package session

import (
	"testing"

	"fecperf/internal/wire"
)

// Alloc ceilings for the session hot paths, asserting the flat pooled
// design: encode scatters straight into pooled symbols through a cached
// codec (baseline before the rewrite: 40 allocs/op), a full receive+
// decode cycle reuses pooled decoder scratch (baseline: 115), and
// steady-state datagram ingest — scratch header, pooled payload copy —
// allocates nothing at all (baseline: 7).

func TestSessionEncodeAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; ceilings gate the plain tier")
	}
	data := benchData(64 << 10)
	cfg := SenderConfig{ObjectID: 1, Family: wire.CodeRSE, Ratio: 1.5, PayloadSize: 1024}
	run := func() {
		obj, err := EncodeObject(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		obj.Close()
	}
	run() // warm the pools and the codec cache
	if avg := testing.AllocsPerRun(50, run); avg > 4 {
		t.Errorf("EncodeObject allocs/op = %.1f, want <= 4", avg)
	}
}

func TestSessionDecodeAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; ceilings gate the plain tier")
	}
	data := benchData(64 << 10)
	cfg := SenderConfig{ObjectID: 1, Family: wire.CodeRSE, Ratio: 1.5, PayloadSize: 1024}
	obj, err := EncodeObject(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	// Parity-heavy delivery so the decoder must invert: skip the first
	// quarter of the sources and backfill with parity.
	k, n := obj.K(), obj.N()
	var datagrams [][]byte
	for id := k / 4; id < n; id++ {
		d, err := obj.Datagram(id)
		if err != nil {
			t.Fatal(err)
		}
		datagrams = append(datagrams, d)
	}
	run := func() {
		rx := NewReceiver()
		for _, d := range datagrams {
			_, done, out, err := rx.Ingest(d)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				if len(out) != len(data) {
					t.Fatalf("decoded %d bytes, want %d", len(out), len(data))
				}
				return
			}
		}
		t.Fatal("object did not decode")
	}
	run() // warm the pools and the codec cache
	if avg := testing.AllocsPerRun(50, run); avg > 16 {
		t.Errorf("receive+decode allocs/op = %.1f, want <= 16", avg)
	}
}

func TestSessionIngestAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; ceilings gate the plain tier")
	}
	data := benchData(256 << 10)
	cfg := SenderConfig{ObjectID: 1, Family: wire.CodeLDGMStaircase, Ratio: 2.5, PayloadSize: 1024, Seed: 9}
	obj, err := EncodeObject(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	datagrams := make([][]byte, obj.N())
	for id := range datagrams {
		d, err := obj.Datagram(id)
		if err != nil {
			t.Fatal(err)
		}
		datagrams[id] = d
	}
	// Steady-state ingest: k=256, so the warm-up plus 100 measured
	// datagrams never complete the object (completion would tear down
	// the receiver's state and cloud the measurement).
	rx := NewReceiver()
	fed := 0
	run := func() {
		if _, done, _, err := rx.Ingest(datagrams[fed]); err != nil {
			t.Fatal(err)
		} else if done {
			t.Fatal("object completed mid-measurement")
		}
		fed++
	}
	run() // warm the pools and per-object state
	if avg := testing.AllocsPerRun(100, run); avg > 4 {
		t.Errorf("Ingest allocs/op = %.1f, want <= 4", avg)
	}
}
