package session

import (
	"bytes"
	"math/rand"
	"testing"

	"fecperf/internal/channel"
	"fecperf/internal/sched"
	"fecperf/internal/wire"
)

func testObject(size int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, size)
	rng.Read(data)
	return data
}

func baseConfig(f wire.CodeFamily) SenderConfig {
	return SenderConfig{
		ObjectID:    1,
		Family:      f,
		Ratio:       1.5,
		PayloadSize: 64,
		Seed:        42,
	}
}

func allFamilies() []wire.CodeFamily {
	return []wire.CodeFamily{wire.CodeRSE, wire.CodeLDGM, wire.CodeLDGMStaircase, wire.CodeLDGMTriangle}
}

func TestEncodeObjectValidation(t *testing.T) {
	if _, err := EncodeObject(nil, baseConfig(wire.CodeRSE)); err == nil {
		t.Fatal("accepted empty object")
	}
	cfg := baseConfig(wire.CodeRSE)
	cfg.PayloadSize = 0
	if _, err := EncodeObject([]byte{1}, cfg); err == nil {
		t.Fatal("accepted zero payload size")
	}
	cfg = baseConfig(wire.CodeInvalid)
	if _, err := EncodeObject([]byte{1, 2, 3}, cfg); err == nil {
		t.Fatal("accepted invalid family")
	}
}

func TestLosslessDeliveryAllFamilies(t *testing.T) {
	obj := testObject(10_000, 1)
	for _, f := range allFamilies() {
		cfg := baseConfig(f)
		enc, err := EncodeObject(obj, cfg)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		rx := NewReceiver()
		var got []byte
		err = enc.Send(rand.New(rand.NewSource(2)), func(d []byte) error {
			_, complete, data, err := rx.Ingest(d)
			if err != nil {
				return err
			}
			if complete {
				got = data
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if !bytes.Equal(got, obj) {
			t.Fatalf("%v: reconstructed object differs", f)
		}
	}
}

func TestDeliveryOverLossyChannel(t *testing.T) {
	obj := testObject(20_000, 3)
	for _, f := range []wire.CodeFamily{wire.CodeRSE, wire.CodeLDGMStaircase, wire.CodeLDGMTriangle} {
		cfg := baseConfig(f)
		cfg.Ratio = 2.5
		if f == wire.CodeRSE {
			cfg.Scheduler = sched.TxModel5{} // interleave RSE, per the paper
		}
		enc, err := EncodeObject(obj, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ch := channel.NewGilbert(0.05, 0.5, rand.New(rand.NewSource(7)))
		rx := NewReceiver()
		var got []byte
		err = enc.Send(rand.New(rand.NewSource(8)), func(d []byte) error {
			if ch.Lost() {
				return nil
			}
			_, complete, data, err := rx.Ingest(d)
			if err != nil {
				return err
			}
			if complete {
				got = data
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, obj) {
			t.Fatalf("%v: object not reconstructed over lossy channel", f)
		}
	}
}

func TestTinyObjectSingleSymbol(t *testing.T) {
	obj := []byte("hi")
	cfg := baseConfig(wire.CodeLDGMStaircase)
	enc, err := EncodeObject(obj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rx := NewReceiver()
	var got []byte
	if err := enc.Send(rand.New(rand.NewSource(1)), func(d []byte) error {
		_, c, data, err := rx.Ingest(d)
		if c {
			got = data
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, obj) {
		t.Fatalf("got %q, want %q", got, obj)
	}
}

func TestMultiplexedObjects(t *testing.T) {
	// Two interleaved objects on one receiver.
	a := testObject(5000, 10)
	b := testObject(7000, 11)
	cfgA := baseConfig(wire.CodeLDGMTriangle)
	cfgA.ObjectID = 100
	cfgB := baseConfig(wire.CodeRSE)
	cfgB.ObjectID = 200

	encA, err := EncodeObject(a, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	encB, err := EncodeObject(b, cfgB)
	if err != nil {
		t.Fatal(err)
	}

	var stream [][]byte
	collect := func(d []byte) error { stream = append(stream, d); return nil }
	if err := encA.Send(rand.New(rand.NewSource(1)), collect); err != nil {
		t.Fatal(err)
	}
	if err := encB.Send(rand.New(rand.NewSource(2)), collect); err != nil {
		t.Fatal(err)
	}
	// Interleave the two transmissions.
	rand.New(rand.NewSource(3)).Shuffle(len(stream), func(i, j int) {
		stream[i], stream[j] = stream[j], stream[i]
	})

	rx := NewReceiver()
	for _, d := range stream {
		if _, _, _, err := rx.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	gotA, okA := rx.Object(100)
	gotB, okB := rx.Object(200)
	if !okA || !okB {
		t.Fatalf("objects complete: A=%v B=%v", okA, okB)
	}
	if !bytes.Equal(gotA, a) || !bytes.Equal(gotB, b) {
		t.Fatal("multiplexed objects corrupted")
	}
}

func TestIngestRejectsGarbage(t *testing.T) {
	rx := NewReceiver()
	if _, _, _, err := rx.Ingest([]byte("not a datagram at all..........................................")); err == nil {
		t.Fatal("garbage ingested without error")
	}
	if _, _, _, err := rx.Ingest(nil); err == nil {
		t.Fatal("nil datagram ingested")
	}
}

func TestIngestInconsistentOTI(t *testing.T) {
	obj := testObject(3000, 5)
	enc, err := EncodeObject(obj, baseConfig(wire.CodeLDGMStaircase))
	if err != nil {
		t.Fatal(err)
	}
	d0, err := enc.Datagram(0)
	if err != nil {
		t.Fatal(err)
	}
	rx := NewReceiver()
	if _, _, _, err := rx.Ingest(d0); err != nil {
		t.Fatal(err)
	}
	// Forge a datagram with the same object ID but different geometry.
	forged := wire.Packet{
		Family: wire.CodeLDGMStaircase, ObjectID: 1, PacketID: 0,
		K: 9, N: 18, Seed: 42, Payload: make([]byte, 64),
	}
	raw, err := forged.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := rx.Ingest(raw); err == nil {
		t.Fatal("inconsistent OTI accepted")
	}
}

func TestDuplicateAndPostCompletionDatagrams(t *testing.T) {
	obj := testObject(4000, 6)
	enc, err := EncodeObject(obj, baseConfig(wire.CodeLDGMStaircase))
	if err != nil {
		t.Fatal(err)
	}
	rx := NewReceiver()
	var datagrams [][]byte
	if err := enc.Send(rand.New(rand.NewSource(1)), func(d []byte) error {
		datagrams = append(datagrams, append([]byte(nil), d...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Deliver everything twice; completion must happen exactly once.
	completions := 0
	for pass := 0; pass < 2; pass++ {
		for _, d := range datagrams {
			_, complete, _, err := rx.Ingest(d)
			if err != nil {
				t.Fatal(err)
			}
			if complete {
				completions++
			}
		}
	}
	if completions != 1 {
		t.Fatalf("object completed %d times, want 1", completions)
	}
}

func TestNSentTruncationInSend(t *testing.T) {
	obj := testObject(4000, 7)
	cfg := baseConfig(wire.CodeLDGMStaircase)
	cfg.NSent = 10
	enc, err := EncodeObject(obj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := enc.Send(rand.New(rand.NewSource(1)), func([]byte) error {
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("sent %d datagrams, want 10", count)
	}
}

func TestPacketsIngestedProgress(t *testing.T) {
	obj := testObject(4000, 8)
	enc, err := EncodeObject(obj, baseConfig(wire.CodeLDGMTriangle))
	if err != nil {
		t.Fatal(err)
	}
	rx := NewReceiver()
	d0, _ := enc.Datagram(0)
	d1, _ := enc.Datagram(1)
	rx.Ingest(d0) //nolint:errcheck
	rx.Ingest(d1) //nolint:errcheck
	if got := rx.PacketsIngested(1); got != 2 {
		t.Fatalf("PacketsIngested = %d, want 2", got)
	}
	if got := rx.PacketsIngested(999); got != 0 {
		t.Fatalf("unknown object PacketsIngested = %d", got)
	}
}

func TestSendEmitErrorAborts(t *testing.T) {
	obj := testObject(1000, 9)
	enc, err := EncodeObject(obj, baseConfig(wire.CodeLDGMStaircase))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	err = enc.Send(rand.New(rand.NewSource(1)), func([]byte) error {
		calls++
		if calls == 3 {
			return bytes.ErrTooLarge
		}
		return nil
	})
	if err == nil || calls != 3 {
		t.Fatalf("Send did not abort on emit error (calls=%d, err=%v)", calls, err)
	}
}

func TestObjectGeometryAccessors(t *testing.T) {
	obj := testObject(6400, 12) // 6400+8 bytes → 101 symbols of 64
	enc, err := EncodeObject(obj, baseConfig(wire.CodeLDGMStaircase))
	if err != nil {
		t.Fatal(err)
	}
	if enc.K() != 101 {
		t.Fatalf("K = %d, want 101", enc.K())
	}
	if enc.N() <= enc.K() {
		t.Fatalf("N = %d not above K", enc.N())
	}
	if _, err := enc.Datagram(-1); err == nil {
		t.Fatal("Datagram(-1) accepted")
	}
	if _, err := enc.Datagram(enc.N()); err == nil {
		t.Fatal("Datagram(N) accepted")
	}
}

func TestObjectClose(t *testing.T) {
	obj := testObject(3000, 20)
	enc, err := EncodeObject(obj, baseConfig(wire.CodeLDGMStaircase))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Datagram(0); err != nil {
		t.Fatal(err)
	}
	enc.Close()
	enc.Close() // idempotent
	if _, err := enc.Datagram(0); err == nil {
		t.Fatal("Datagram succeeded on a closed object")
	}
	if err := enc.Send(rand.New(rand.NewSource(1)), func([]byte) error { return nil }); err == nil {
		t.Fatal("Send succeeded on a closed object")
	}
}

func TestForgetInFlightRestartsCleanly(t *testing.T) {
	obj := testObject(4000, 21)
	enc, err := EncodeObject(obj, baseConfig(wire.CodeLDGMTriangle))
	if err != nil {
		t.Fatal(err)
	}
	var datagrams [][]byte
	if err := enc.Send(rand.New(rand.NewSource(2)), func(d []byte) error {
		datagrams = append(datagrams, append([]byte(nil), d...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rx := NewReceiver()
	// Feed half, evict (closing the pooled decoder state), then deliver
	// everything: the object must start over and still decode exactly.
	for _, d := range datagrams[:len(datagrams)/2] {
		if _, _, _, err := rx.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	rx.Forget(1)
	if got := rx.PacketsIngested(1); got != 0 {
		t.Fatalf("state survived Forget: %d packets", got)
	}
	var got []byte
	for _, d := range datagrams {
		_, complete, data, err := rx.Ingest(d)
		if err != nil {
			t.Fatal(err)
		}
		if complete {
			got = data
		}
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("object corrupted after Forget/restart")
	}
}

func TestSessionAllWireFamilies(t *testing.T) {
	// The codec surface must make every wire family deliverable,
	// including the two the session layer could not carry before
	// (rse16 and no-fec).
	obj := testObject(9000, 22)
	for _, f := range []wire.CodeFamily{wire.CodeRSE16, wire.CodeNoFEC} {
		cfg := baseConfig(f)
		if f == wire.CodeNoFEC {
			cfg.Ratio = 1.0
		}
		enc, err := EncodeObject(obj, cfg)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		rx := NewReceiver()
		var got []byte
		err = enc.Send(rand.New(rand.NewSource(3)), func(d []byte) error {
			_, complete, data, err := rx.Ingest(d)
			if complete {
				got = data
			}
			return err
		})
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if !bytes.Equal(got, obj) {
			t.Fatalf("%v: reconstructed object differs", f)
		}
		enc.Close()
	}
	// rse16 carries 16-bit symbols: odd payload sizes must be rejected.
	cfg := baseConfig(wire.CodeRSE16)
	cfg.PayloadSize = 63
	if _, err := EncodeObject(obj, cfg); err == nil {
		t.Fatal("rse16 accepted an odd payload size")
	}
}
