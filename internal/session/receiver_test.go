package session

import (
	"bytes"
	"math/rand"
	"testing"

	"fecperf/internal/sched"
	"fecperf/internal/wire"
)

// These tests exercise the receiver under transport-realistic input —
// the arrival patterns a ReceiverDaemon sees on a real socket: reused
// read buffers, duplicated and corrupted datagrams, interleaved objects,
// and receivers that join mid-stream.

// datagramsAny renders every packet of an object in schedule order.
func datagramsAny(t *testing.T, o *Object, seed int64) [][]byte {
	t.Helper()
	var out [][]byte
	if err := o.Send(rand.New(rand.NewSource(seed)), func(d []byte) error {
		out = append(out, append([]byte(nil), d...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestIngestFromReusedBuffer replays the transport daemon's exact usage:
// every datagram is copied into ONE shared read buffer before Ingest, so
// any payload the receiver retains by reference gets overwritten by the
// next arrival. The Clone at the ownership boundary must keep decoding
// correct anyway.
func TestIngestFromReusedBuffer(t *testing.T) {
	for _, f := range allFamilies() {
		obj := testObject(20_000, 3)
		enc, err := EncodeObject(obj, baseConfig(f))
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		rx := NewReceiver()
		buf := make([]byte, 4096) // the single reused "socket buffer"
		var got []byte
		for _, d := range datagramsAny(t, enc, 7) {
			n := copy(buf, d)
			_, complete, data, err := rx.Ingest(buf[:n])
			if err != nil {
				t.Fatalf("%v: Ingest: %v", f, err)
			}
			if complete {
				got = data
				break
			}
		}
		if !bytes.Equal(got, obj) {
			t.Fatalf("%v: decode through a reused buffer corrupted the object", f)
		}
	}
}

// TestDuplicatedDatagrams delivers every datagram twice (and some three
// times), as a carousel or a flapping multicast path would.
func TestDuplicatedDatagrams(t *testing.T) {
	for _, f := range allFamilies() {
		obj := testObject(10_000, 4)
		enc, err := EncodeObject(obj, baseConfig(f))
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		rx := NewReceiver()
		var got []byte
		for i, d := range datagramsAny(t, enc, 8) {
			copies := 2 + i%2
			for c := 0; c < copies && got == nil; c++ {
				_, complete, data, err := rx.Ingest(d)
				if err != nil {
					t.Fatalf("%v: Ingest dup %d: %v", f, c, err)
				}
				if complete {
					got = data
				}
			}
			if got != nil {
				break
			}
		}
		if !bytes.Equal(got, obj) {
			t.Fatalf("%v: duplicates broke decoding", f)
		}
	}
}

// TestInterleavedMultiObjectStream multiplexes four objects of different
// sizes and families over one receiver, round-robin — an ALC session
// carrying several files at once.
func TestInterleavedMultiObjectStream(t *testing.T) {
	type stream struct {
		id   uint32
		data []byte
		dgs  [][]byte
		pos  int
	}
	families := allFamilies()
	var streams []*stream
	for i, f := range families {
		cfg := baseConfig(f)
		cfg.ObjectID = uint32(10 + i)
		cfg.Seed = int64(50 + i)
		data := testObject(4_000+3_000*i, int64(20+i))
		enc, err := EncodeObject(data, cfg)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		streams = append(streams, &stream{
			id:   cfg.ObjectID,
			data: data,
			dgs:  datagramsAny(t, enc, int64(30+i)),
		})
	}
	rx := NewReceiver()
	done := map[uint32][]byte{}
	for remaining := len(streams); remaining > 0; {
		remaining = 0
		for _, s := range streams {
			if s.pos >= len(s.dgs) {
				continue
			}
			remaining++
			id, complete, data, err := rx.Ingest(s.dgs[s.pos])
			s.pos++
			if err != nil {
				t.Fatalf("object %d: %v", s.id, err)
			}
			if complete {
				done[id] = data
			}
		}
	}
	for _, s := range streams {
		if !bytes.Equal(done[s.id], s.data) {
			t.Fatalf("object %d corrupted or incomplete in interleaved stream", s.id)
		}
	}
}

// TestCorruptAndTruncatedDatagramsInterspersed mixes flipped-bit,
// truncated and foreign datagrams into a valid stream; each must error
// without damaging the ongoing reassembly.
func TestCorruptAndTruncatedDatagramsInterspersed(t *testing.T) {
	obj := testObject(15_000, 5)
	cfg := baseConfig(wire.CodeLDGMStaircase)
	enc, err := EncodeObject(obj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rx := NewReceiver()
	var got []byte
	errors := 0
	for i, d := range datagramsAny(t, enc, 9) {
		switch i % 3 {
		case 1: // header bit flip → checksum mismatch
			bad := append([]byte(nil), d...)
			bad[9] ^= 0x40
			if _, _, _, err := rx.Ingest(bad); err == nil {
				t.Fatal("corrupted header accepted")
			}
			errors++
		case 2: // truncated payload
			if _, _, _, err := rx.Ingest(d[:wire.HeaderLen+1]); err == nil {
				t.Fatal("truncated datagram accepted")
			}
			errors++
		}
		_, complete, data, err := rx.Ingest(d)
		if err != nil {
			t.Fatalf("valid datagram %d rejected: %v", i, err)
		}
		if complete {
			got = data
			break
		}
	}
	if errors == 0 {
		t.Fatal("test never injected corruption")
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("corruption injection damaged reassembly")
	}
}

// TestMidStreamJoin starts ingesting only after 40% of a carousel's
// first round has passed — the receiver must still complete from the
// remainder plus the second round, with no knowledge of what it missed.
func TestMidStreamJoin(t *testing.T) {
	for _, f := range allFamilies() {
		obj := testObject(12_000, 6)
		cfg := baseConfig(f)
		cfg.Scheduler = sched.Carousel{Inner: sched.TxModel4{}, Rounds: 2}
		enc, err := EncodeObject(obj, cfg)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		all := datagramsAny(t, enc, 11)
		join := (enc.N() * 2) / 5
		rx := NewReceiver()
		var got []byte
		for _, d := range all[join:] {
			_, complete, data, err := rx.Ingest(d)
			if err != nil {
				t.Fatalf("%v: %v", f, err)
			}
			if complete {
				got = data
				break
			}
		}
		if !bytes.Equal(got, obj) {
			t.Fatalf("%v: mid-stream join failed to decode", f)
		}
	}
}

// TestForgetAndInFlight covers the eviction hooks the transport daemon
// relies on for bounded memory.
func TestForgetAndInFlight(t *testing.T) {
	obj := testObject(5_000, 7)
	enc, err := EncodeObject(obj, baseConfig(wire.CodeLDGMStaircase))
	if err != nil {
		t.Fatal(err)
	}
	all := datagramsAny(t, enc, 13)
	rx := NewReceiver()
	if _, _, _, err := rx.Ingest(all[0]); err != nil {
		t.Fatal(err)
	}
	if got := rx.InFlight(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("InFlight = %v, want [1]", got)
	}
	rx.Forget(1)
	if got := rx.InFlight(); len(got) != 0 {
		t.Fatalf("InFlight after Forget = %v, want empty", got)
	}
	if n := rx.PacketsIngested(1); n != 0 {
		t.Fatalf("PacketsIngested after Forget = %d, want 0", n)
	}
	// The object decodes from scratch after eviction.
	var got []byte
	for _, d := range all {
		_, complete, data, err := rx.Ingest(d)
		if err != nil {
			t.Fatal(err)
		}
		if complete {
			got = data
			break
		}
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("decode after Forget failed")
	}
	// Forget also releases completed objects.
	if _, ok := rx.Object(1); !ok {
		t.Fatal("completed object missing")
	}
	rx.Forget(1)
	if _, ok := rx.Object(1); ok {
		t.Fatal("completed object survived Forget")
	}
}
