package transport

import (
	"context"
	"io"
	"testing"
	"time"

	"fecperf/internal/obs"
	"fecperf/internal/wire"
)

// BenchmarkSenderThroughput measures the carousel's packet rate through
// the loopback with one attached (drained) receiver: header pre-encode,
// per-round scheduling, fan-out and queueing, no pacing.
func BenchmarkSenderThroughput(b *testing.B) {
	hub := NewLoopback()
	defer hub.Close()
	rx := hub.Receiver(nil, 4096)
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		buf := make([]byte, 2048)
		for {
			if _, err := rx.Recv(buf); err != nil {
				return
			}
		}
	}()

	obj := encodeTestObject(b, testFile(b, 256<<10, 1), 1, wire.CodeLDGMStaircase, 2.5, 1024)
	s := NewSender(hub.Sender(), SenderConfig{Seed: 2})
	if err := s.Add(obj); err != nil {
		b.Fatal(err)
	}
	rounds := b.N/obj.N() + 1
	s.cfg.Rounds = rounds

	b.ResetTimer()
	start := time.Now()
	if err := s.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
	elapsed := time.Since(start)
	b.StopTimer()
	st := s.Stats()
	b.SetBytes(int64(st.BytesSent / st.PacketsSent)) // avg datagram size
	b.ReportMetric(float64(st.PacketsSent)/elapsed.Seconds(), "pkts/s")
	rx.Close()
	<-drainDone
}

// BenchmarkReceiverDecodeLatency measures time-to-decoded-object at the
// daemon: one lossless round of a 256 KiB LDGM-Staircase object per
// iteration, from first datagram to completed reassembly.
func BenchmarkReceiverDecodeLatency(b *testing.B) {
	file := testFile(b, 256<<10, 3)
	b.SetBytes(int64(len(file)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		hub := NewLoopback()
		obj := encodeTestObject(b, file, uint32(i+1), wire.CodeLDGMStaircase, 2.5, 1024)
		d := NewReceiverDaemon(hub.Receiver(nil, obj.N()+16), ReceiverConfig{})
		ctx, cancel := context.WithCancel(context.Background())
		daemonDone := make(chan struct{})
		go func() { defer close(daemonDone); d.Run(ctx) }() //nolint:errcheck
		s := NewSender(hub.Sender(), SenderConfig{Rounds: 1, Seed: int64(i)})
		if err := s.Add(obj); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		if err := s.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		if _, err := d.WaitObject(context.Background(), uint32(i+1)); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		cancel()
		<-daemonDone
		hub.Close()
		b.StartTimer()
	}
}

// discardConn swallows datagrams: the sender-round benchmark isolates
// scheduling + lazy encoding from loopback fan-out.
type discardConn struct{ packets int }

func (c *discardConn) Send(d []byte) error             { c.packets++; return nil }
func (c *discardConn) Recv([]byte) (int, error)        { return 0, ErrClosed }
func (c *discardConn) SetReadDeadline(time.Time) error { return nil }
func (c *discardConn) Close() error                    { return nil }
func (c *discardConn) LocalAddr() string               { return "discard" }

// benchSenderRound measures one full carousel round per op — streaming
// schedule draw, lazy per-packet encode through the shared scratch
// buffer, round-robin interleave — with the Conn cost removed. The
// headline column is allocs/op: the steady-state round loop must
// allocate nothing (schedules are drawn by value, datagrams encoded in
// place), where the old sender allocated a [][]int of schedules every
// round and held every datagram pre-encoded.
func benchSenderRound(b *testing.B, cfg SenderConfig, conn Conn, packets func() int) {
	objA := encodeTestObject(b, testFile(b, 128<<10, 1), 1, wire.CodeLDGMStaircase, 2.5, 1024)
	objB := encodeTestObject(b, testFile(b, 64<<10, 2), 2, wire.CodeRSE, 1.5, 1024)
	defer objA.Close()
	defer objB.Close()
	cfg.Seed = 2
	cfg.Rounds = b.N
	s := NewSender(conn, cfg)
	if err := s.Add(objA); err != nil {
		b.Fatal(err)
	}
	if err := s.Add(objB); err != nil {
		b.Fatal(err)
	}
	perRound := objA.N() + objB.N()
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(packets())/float64(b.N), "pkts/round")
	if packets() != b.N*perRound {
		b.Fatalf("sent %d packets, want %d", packets(), b.N*perRound)
	}
}

func BenchmarkSenderRound(b *testing.B) {
	conn := &discardConn{}
	benchSenderRound(b, SenderConfig{}, conn, func() int { return conn.packets })
}

// BenchmarkSenderRoundBatched is the same carousel round with the
// vectorized send loop: datagrams packed into one scratch region and
// flushed 32 at a time through WriteBatch. The pkts/round and allocs/op
// columns must match the scalar round (identical carousel, amortized
// zero allocation); the ns/op delta is the packing overhead the batch
// syscall savings buy back many times over on a real socket.
func BenchmarkSenderRoundBatched(b *testing.B) {
	conn := &discardBatchConn{}
	benchSenderRound(b, SenderConfig{BatchSize: 32}, conn, func() int { return conn.packets })
}

// BenchmarkSenderRoundInstrumented is the same round loop with the full
// observability surface attached: a registry exposing the sender's
// counters and a tracer whose sampling rejects every object (the
// worst-case live configuration — a fleet traces a tiny fraction). The
// per-round delta against BenchmarkSenderRound is the instrumentation
// tax; scripts/bench_obs.sh gates it below 3%.
func BenchmarkSenderRoundInstrumented(b *testing.B) {
	reg := obs.NewRegistry("fecperf")
	tr := obs.NewTracer(io.Discard, obs.TracerConfig{Sample: 1e-12, Seed: 7})
	conn := &discardConn{}
	benchSenderRound(b, SenderConfig{Metrics: reg, Tracer: tr}, conn, func() int { return conn.packets })
}

// --- Kernel-batched datapath benchmarks (scripts/bench_net.sh) ---

// benchUDPPair dials a connected UDP socket at an unread listener on
// the loopback interface. The write benchmarks measure the send-side
// kernel crossing alone: the kernel drops datagrams silently once the
// receive buffer fills, which is exactly the cost profile of a
// multicast sender pushing into the network.
func benchUDPPair(b *testing.B) (tx Conn, done func()) {
	b.Helper()
	rx, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	tx, err = DialUDP(rx.LocalAddr())
	if err != nil {
		rx.Close()
		b.Fatal(err)
	}
	return tx, func() { tx.Close(); rx.Close() }
}

const benchDgramSize = 1024

// BenchmarkUDPWriteScalar is the per-datagram baseline: one sendto(2)
// per 1 KiB datagram on a connected UDP socket.
func BenchmarkUDPWriteScalar(b *testing.B) {
	tx, done := benchUDPPair(b)
	defer done()
	d := make([]byte, benchDgramSize)
	b.SetBytes(benchDgramSize)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := tx.Send(d); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "pkts/s")
}

// BenchmarkUDPWriteBatch pushes the same 1 KiB datagrams 32 at a time
// through WriteBatch — sendmmsg with UDP GSO coalescing the equal-size
// run into superpackets where the kernel supports it. The pkts/s ratio
// against BenchmarkUDPWriteScalar is the headline of the batched
// datapath; scripts/bench_net.sh gates it at 4x.
func BenchmarkUDPWriteBatch(b *testing.B) {
	tx, done := benchUDPPair(b)
	defer done()
	const batchN = 32
	backing := make([]byte, batchN*benchDgramSize)
	batch := make([]wire.Datagram, batchN)
	for i := range batch {
		batch[i] = backing[i*benchDgramSize : (i+1)*benchDgramSize : (i+1)*benchDgramSize]
	}
	b.SetBytes(batchN * benchDgramSize)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if n, err := WriteBatch(tx, batch); n != batchN || err != nil {
			b.Fatalf("WriteBatch = %d, %v", n, err)
		}
	}
	b.ReportMetric(float64(b.N*batchN)/time.Since(start).Seconds(), "pkts/s")
}

// benchLoopbackDrained builds a loopback hub with one receiver drained
// by a goroutine, so the write benchmarks measure fan-out cost, not
// queue-full drops.
func benchLoopbackDrained(b *testing.B) (tx Conn, done func()) {
	b.Helper()
	hub := NewLoopback()
	rx := hub.Receiver(nil, 4096)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		buf := make([]byte, 2048)
		for {
			if _, err := rx.Recv(buf); err != nil {
				return
			}
		}
	}()
	return hub.Sender(), func() {
		rx.Close()
		<-drained
		hub.Close()
	}
}

// BenchmarkLoopbackWriteScalar is the in-process baseline: one Send per
// datagram through the loopback hub's per-receiver channel step + copy.
func BenchmarkLoopbackWriteScalar(b *testing.B) {
	tx, done := benchLoopbackDrained(b)
	defer done()
	d := make([]byte, benchDgramSize)
	b.SetBytes(benchDgramSize)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := tx.Send(d); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "pkts/s")
}

// BenchmarkLoopbackWriteBatch fans out 32 datagrams per WriteBatch: one
// backing copy for the whole batch and one lock + 64-wide channel mask
// per receiver instead of 32 of each.
func BenchmarkLoopbackWriteBatch(b *testing.B) {
	tx, done := benchLoopbackDrained(b)
	defer done()
	const batchN = 32
	backing := make([]byte, batchN*benchDgramSize)
	batch := make([]wire.Datagram, batchN)
	for i := range batch {
		batch[i] = backing[i*benchDgramSize : (i+1)*benchDgramSize : (i+1)*benchDgramSize]
	}
	b.SetBytes(batchN * benchDgramSize)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if n, err := WriteBatch(tx, batch); n != batchN || err != nil {
			b.Fatalf("WriteBatch = %d, %v", n, err)
		}
	}
	b.ReportMetric(float64(b.N*batchN)/time.Since(start).Seconds(), "pkts/s")
}
