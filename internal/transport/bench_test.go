package transport

import (
	"context"
	"io"
	"testing"
	"time"

	"fecperf/internal/obs"
	"fecperf/internal/wire"
)

// BenchmarkSenderThroughput measures the carousel's packet rate through
// the loopback with one attached (drained) receiver: header pre-encode,
// per-round scheduling, fan-out and queueing, no pacing.
func BenchmarkSenderThroughput(b *testing.B) {
	hub := NewLoopback()
	defer hub.Close()
	rx := hub.Receiver(nil, 4096)
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		buf := make([]byte, 2048)
		for {
			if _, err := rx.Recv(buf); err != nil {
				return
			}
		}
	}()

	obj := encodeTestObject(b, testFile(b, 256<<10, 1), 1, wire.CodeLDGMStaircase, 2.5, 1024)
	s := NewSender(hub.Sender(), SenderConfig{Seed: 2})
	if err := s.Add(obj); err != nil {
		b.Fatal(err)
	}
	rounds := b.N/obj.N() + 1
	s.cfg.Rounds = rounds

	b.ResetTimer()
	start := time.Now()
	if err := s.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
	elapsed := time.Since(start)
	b.StopTimer()
	st := s.Stats()
	b.SetBytes(int64(st.BytesSent / st.PacketsSent)) // avg datagram size
	b.ReportMetric(float64(st.PacketsSent)/elapsed.Seconds(), "pkts/s")
	rx.Close()
	<-drainDone
}

// BenchmarkReceiverDecodeLatency measures time-to-decoded-object at the
// daemon: one lossless round of a 256 KiB LDGM-Staircase object per
// iteration, from first datagram to completed reassembly.
func BenchmarkReceiverDecodeLatency(b *testing.B) {
	file := testFile(b, 256<<10, 3)
	b.SetBytes(int64(len(file)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		hub := NewLoopback()
		obj := encodeTestObject(b, file, uint32(i+1), wire.CodeLDGMStaircase, 2.5, 1024)
		d := NewReceiverDaemon(hub.Receiver(nil, obj.N()+16), ReceiverConfig{})
		ctx, cancel := context.WithCancel(context.Background())
		daemonDone := make(chan struct{})
		go func() { defer close(daemonDone); d.Run(ctx) }() //nolint:errcheck
		s := NewSender(hub.Sender(), SenderConfig{Rounds: 1, Seed: int64(i)})
		if err := s.Add(obj); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		if err := s.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		if _, err := d.WaitObject(context.Background(), uint32(i+1)); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		cancel()
		<-daemonDone
		hub.Close()
		b.StartTimer()
	}
}

// discardConn swallows datagrams: the sender-round benchmark isolates
// scheduling + lazy encoding from loopback fan-out.
type discardConn struct{ packets int }

func (c *discardConn) Send(d []byte) error             { c.packets++; return nil }
func (c *discardConn) Recv([]byte) (int, error)        { return 0, ErrClosed }
func (c *discardConn) SetReadDeadline(time.Time) error { return nil }
func (c *discardConn) Close() error                    { return nil }
func (c *discardConn) LocalAddr() string               { return "discard" }

// benchSenderRound measures one full carousel round per op — streaming
// schedule draw, lazy per-packet encode through the shared scratch
// buffer, round-robin interleave — with the Conn cost removed. The
// headline column is allocs/op: the steady-state round loop must
// allocate nothing (schedules are drawn by value, datagrams encoded in
// place), where the old sender allocated a [][]int of schedules every
// round and held every datagram pre-encoded.
func benchSenderRound(b *testing.B, cfg SenderConfig) {
	objA := encodeTestObject(b, testFile(b, 128<<10, 1), 1, wire.CodeLDGMStaircase, 2.5, 1024)
	objB := encodeTestObject(b, testFile(b, 64<<10, 2), 2, wire.CodeRSE, 1.5, 1024)
	defer objA.Close()
	defer objB.Close()
	conn := &discardConn{}
	cfg.Seed = 2
	cfg.Rounds = b.N
	s := NewSender(conn, cfg)
	if err := s.Add(objA); err != nil {
		b.Fatal(err)
	}
	if err := s.Add(objB); err != nil {
		b.Fatal(err)
	}
	perRound := objA.N() + objB.N()
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(conn.packets)/float64(b.N), "pkts/round")
	if conn.packets != b.N*perRound {
		b.Fatalf("sent %d packets, want %d", conn.packets, b.N*perRound)
	}
}

func BenchmarkSenderRound(b *testing.B) { benchSenderRound(b, SenderConfig{}) }

// BenchmarkSenderRoundInstrumented is the same round loop with the full
// observability surface attached: a registry exposing the sender's
// counters and a tracer whose sampling rejects every object (the
// worst-case live configuration — a fleet traces a tiny fraction). The
// per-round delta against BenchmarkSenderRound is the instrumentation
// tax; scripts/bench_obs.sh gates it below 3%.
func BenchmarkSenderRoundInstrumented(b *testing.B) {
	reg := obs.NewRegistry("fecperf")
	tr := obs.NewTracer(io.Discard, obs.TracerConfig{Sample: 1e-12, Seed: 7})
	benchSenderRound(b, SenderConfig{Metrics: reg, Tracer: tr})
}
