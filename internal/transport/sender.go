package transport

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"

	"fecperf/internal/core"
	"fecperf/internal/sched"
	"fecperf/internal/session"
)

// SenderConfig tunes the carousel.
type SenderConfig struct {
	// Rate limits transmission in packets per second (0 = unpaced).
	Rate float64
	// Burst is the token-bucket depth in packets (default 32).
	Burst int
	// Rounds bounds the carousel; 0 streams until the context is
	// cancelled — the ALC "infinite carousel" serving late joiners.
	Rounds int
	// Scheduler orders each round's packets when an object does not
	// carry its own (default Tx_model_4, the paper's recommendation for
	// unknown channels). Each round draws a fresh schedule, so
	// randomised models re-randomise between rounds.
	Scheduler core.Scheduler
	// Seed fixes the scheduling randomness.
	Seed int64
	// OnRound, when set, is called after each completed carousel round
	// with the 0-based round index (for progress logs).
	OnRound func(round int)
}

// SenderStats is a point-in-time snapshot of sender counters.
type SenderStats struct {
	// PacketsSent counts datagrams handed to the Conn.
	PacketsSent uint64
	// BytesSent counts the datagram bytes handed to the Conn.
	BytesSent uint64
	// Rounds counts completed carousel rounds.
	Rounds uint64
}

// Sender streams one or more encoded objects over a Conn as a
// rate-limited carousel. Each round every object's packets are freshly
// scheduled and the objects are interleaved round-robin, so a receiver
// joining mid-stream sees a statistically uniform packet mix — the
// regime the paper's Tx_model_4 analysis covers.
//
// Configure and Add objects before Run; Run may be called once. Stats is
// safe to call concurrently with Run.
type Sender struct {
	conn Conn
	cfg  SenderConfig
	objs []*senderObject

	packets atomic.Uint64
	bytes   atomic.Uint64
	rounds  atomic.Uint64
}

type senderObject struct {
	layout    core.Layout
	scheduler core.Scheduler
	nsent     int      // per-round schedule truncation (0 = all)
	datagrams [][]byte // pre-encoded, indexed by packet ID
}

// NewSender returns a sender writing to conn.
func NewSender(conn Conn, cfg SenderConfig) *Sender {
	return &Sender{conn: conn, cfg: cfg}
}

// Add registers an encoded object with the carousel, pre-encoding all of
// its datagrams (the carousel retransmits them every round, so paying
// the header encode once is the hot-path win).
func (s *Sender) Add(obj *session.Object) error {
	so := &senderObject{
		layout:    obj.Layout(),
		scheduler: obj.Scheduler(),
		nsent:     obj.NSent(),
		datagrams: make([][]byte, obj.N()),
	}
	for id := range so.datagrams {
		d, err := obj.Datagram(id)
		if err != nil {
			return fmt.Errorf("transport: pre-encoding object %d: %w", obj.ObjectID(), err)
		}
		so.datagrams[id] = d
	}
	s.objs = append(s.objs, so)
	return nil
}

// Run drives the carousel until the configured rounds complete or ctx is
// cancelled. Cancellation is a graceful shutdown: Run stops between
// packets and returns ctx.Err().
func (s *Sender) Run(ctx context.Context) error {
	if len(s.objs) == 0 {
		return fmt.Errorf("transport: sender has no objects")
	}
	defaultSched := s.cfg.Scheduler
	if defaultSched == nil {
		defaultSched = sched.TxModel4{}
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	p := newPacer(s.cfg.Rate, s.cfg.Burst)

	for round := 0; s.cfg.Rounds <= 0 || round < s.cfg.Rounds; round++ {
		schedules := make([][]int, len(s.objs))
		for i, o := range s.objs {
			sc := o.scheduler
			if sc == nil {
				sc = defaultSched
			}
			schedules[i] = sc.Schedule(o.layout, rng)
			// Honour the object's Section-6 n_sent truncation, exactly
			// as session.Object.Send does for a single pass.
			if o.nsent > 0 && o.nsent < len(schedules[i]) {
				schedules[i] = schedules[i][:o.nsent]
			}
		}
		// Round-robin interleave across objects: one packet from each
		// in turn, objects with longer schedules trailing off last.
		for pos, remaining := 0, len(s.objs); remaining > 0; pos++ {
			remaining = 0
			for i, o := range s.objs {
				if pos >= len(schedules[i]) {
					continue
				}
				remaining++
				if err := p.wait(ctx); err != nil {
					return err
				}
				d := o.datagrams[schedules[i][pos]]
				if err := s.conn.Send(d); err != nil {
					return fmt.Errorf("transport: send: %w", err)
				}
				s.packets.Add(1)
				s.bytes.Add(uint64(len(d)))
			}
		}
		s.rounds.Add(1)
		if s.cfg.OnRound != nil {
			s.cfg.OnRound(round)
		}
	}
	return nil
}

// Stats returns a snapshot of the sender's counters.
func (s *Sender) Stats() SenderStats {
	return SenderStats{
		PacketsSent: s.packets.Load(),
		BytesSent:   s.bytes.Load(),
		Rounds:      s.rounds.Load(),
	}
}
