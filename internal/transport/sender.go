package transport

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"fecperf/internal/core"
	"fecperf/internal/obs"
	"fecperf/internal/sched"
	"fecperf/internal/session"
	"fecperf/internal/wire"
)

// SenderConfig tunes the carousel.
type SenderConfig struct {
	// Rate limits transmission in packets per second (0 = unpaced).
	Rate float64
	// Burst is the token-bucket depth in packets (default 32).
	Burst int
	// Pacer, when set, replaces the sender's built-in token bucket with
	// an external admission source (Rate and Burst are then ignored).
	// The daemon hands every cast's sender a PacerShare here so many
	// carousels divide one SharedPacer line-rate budget. Time blocked in
	// the external pacer accrues on the same pacer-wait counter as the
	// built-in bucket's sleeps.
	Pacer Pacer
	// BatchSize vectorizes the round loop: up to BatchSize datagrams are
	// encoded back to back into one packed scratch region and flushed
	// with a single batch write — one kernel crossing on batch-capable
	// conns (sendmmsg/GSO on UDP, one lock per batch on loopback) — and
	// the pacer is charged once per flush instead of once per packet.
	// Values above 64 are clamped; 0 or 1 keeps the scalar per-datagram
	// path. Batching changes pacing granularity (tokens are taken
	// BatchSize at a time) but not the datagram sequence: batched and
	// scalar runs emit byte-identical carousels.
	BatchSize int
	// Rounds bounds the carousel; 0 streams until the context is
	// cancelled — the ALC "infinite carousel" serving late joiners.
	Rounds int
	// Scheduler orders each round's packets when an object does not
	// carry its own (default Tx_model_4, the paper's recommendation for
	// unknown channels). Each round draws a fresh schedule, so
	// randomised models re-randomise between rounds.
	Scheduler core.Scheduler
	// Seed fixes the scheduling randomness. Round r's schedule for
	// object i depends only on (Seed, r, i) — not on carousel history —
	// so any (round, position) is reproducible; see StartRound.
	Seed int64
	// StartRound and StartPos resume a carousel mid-stream: Run begins
	// at round StartRound, position StartPos within that round, and
	// emits exactly the packet sequence a run from (0,0) would have
	// produced from that point on. Schedules are random-access, so
	// resuming costs nothing — the use case is a restarted sender (or a
	// receiver-driven seek) continuing a deterministic carousel.
	StartRound int
	StartPos   int
	// OnRound, when set, is called after each completed carousel round
	// with the 0-based round index (for progress logs).
	OnRound func(round int)
	// Metrics, when set, exposes the sender's counters on the registry
	// (sender_* series; views over the same counters Stats reports).
	// Registering two senders on one registry makes the newest own the
	// series.
	Metrics *obs.Registry
	// Tracer, when set, records a first_tx lifecycle event the first
	// time each object's datagrams hit the Conn.
	Tracer *obs.Tracer
}

// SenderStats is a point-in-time snapshot of sender counters.
type SenderStats struct {
	// PacketsSent counts datagrams handed to the Conn.
	PacketsSent uint64
	// BytesSent counts the datagram bytes handed to the Conn.
	BytesSent uint64
	// Rounds counts completed carousel rounds.
	Rounds uint64
	// PacerWaitNS counts nanoseconds spent blocked in the rate limiter.
	PacerWaitNS uint64
	// Resumes counts Runs that started mid-carousel (StartRound or
	// StartPos set).
	Resumes uint64
	// Batches counts batch flushes (0 when the sender runs scalar).
	Batches uint64
	// SyscallsSaved counts kernel crossings avoided by batching: each
	// n-datagram flush counts n-1 (what the scalar path would have paid
	// on top of the one write the flush actually issued).
	SyscallsSaved uint64
}

// Sender streams one or more encoded objects over a Conn as a
// rate-limited carousel. Each round every object's packets are freshly
// scheduled and the objects are interleaved round-robin, so a receiver
// joining mid-stream sees a statistically uniform packet mix — the
// regime the paper's Tx_model_4 analysis covers.
//
// The steady-state round loop allocates nothing: schedules are
// streaming (O(1) rules, drawn by value into each object's slot) and
// datagrams are encoded per send into one reused scratch buffer — a
// many-object carousel holds its symbol payloads once, in the session
// objects, not a second time as pre-encoded datagrams.
//
// Configure and Add objects before Run; Run may be called once. Stats is
// safe to call concurrently with Run. The sender reads object payloads
// lazily at send time, so added objects must stay open while the
// carousel runs; Close the sender when done — it waits for an in-flight
// Run to return (cancel its context first) before releasing the
// objects' buffers.
type Sender struct {
	conn Conn
	cfg  SenderConfig
	objs []*senderObject

	// runMu is held by Run for its whole duration; Close takes it, so
	// releasing the objects' pooled buffers synchronizes with the round
	// loop that encodes from them.
	runMu sync.Mutex

	packets   obs.Counter
	bytes     obs.Counter
	rounds    obs.Counter
	pacerWait obs.Counter // ns blocked in the pacer
	resumes   obs.Counter

	batches       obs.Counter
	syscallsSaved obs.Counter
	batchSizes    *obs.Histogram // datagrams per flush (nil without Metrics)
}

type senderObject struct {
	obj       *session.Object
	layout    core.Layout
	scheduler core.Scheduler
	nsent     int           // per-round schedule truncation (0 = all)
	sched     core.Schedule // current round's order, redrawn each round
	cur       core.Cursor   // batched walk over sched, rebuilt with it
	txStarted bool          // first datagram already traced
}

// NewSender returns a sender writing to conn.
func NewSender(conn Conn, cfg SenderConfig) *Sender {
	s := &Sender{conn: conn, cfg: cfg}
	if r := cfg.Metrics; r != nil {
		r.CounterFunc("sender_packets_total", "Datagrams handed to the conn.", nil, s.packets.Load)
		r.CounterFunc("sender_bytes_total", "Datagram bytes handed to the conn.", nil, s.bytes.Load)
		r.CounterFunc("sender_rounds_total", "Completed carousel rounds.", nil, s.rounds.Load)
		r.CounterFunc("sender_pacer_wait_ns_total", "Nanoseconds blocked in the rate limiter.", nil, s.pacerWait.Load)
		r.CounterFunc("sender_resumes_total", "Runs resumed mid-carousel from a stored position.", nil, s.resumes.Load)
		r.CounterFunc("sender_batches_total", "Batch flushes handed to the conn.", nil, s.batches.Load)
		r.CounterFunc("sender_syscalls_saved_total", "Kernel crossings avoided by batching (n-1 per n-datagram flush).", nil, s.syscallsSaved.Load)
		s.batchSizes = r.Histogram("sender_batch_size", "Datagrams per batch flush.", obs.ExpBuckets(1, 2, 7), 0, nil)
		r.GaugeFunc("sender_gso_enabled", "1 when the conn's batched writes use UDP generic segmentation offload.", nil, func() int64 {
			if g, ok := conn.(interface{ GSOEnabled() bool }); ok && g.GSOEnabled() {
				return 1
			}
			return 0
		})
	}
	return s
}

// Add registers an encoded object with the carousel. Datagrams are
// encoded lazily, round by round, through a shared scratch buffer —
// nothing is pre-encoded or cached — so the object must remain open
// (not Closed) until the carousel stops.
func (s *Sender) Add(obj *session.Object) error {
	if obj.N() <= 0 {
		return fmt.Errorf("transport: object %d has no packets", obj.ObjectID())
	}
	// Surface encoding problems (e.g. an already-closed object) at Add
	// time rather than mid-carousel.
	if _, err := obj.AppendDatagram(0, nil); err != nil {
		return fmt.Errorf("transport: adding object %d: %w", obj.ObjectID(), err)
	}
	s.objs = append(s.objs, &senderObject{
		obj:       obj,
		layout:    obj.Layout(),
		scheduler: obj.Scheduler(),
		nsent:     obj.NSent(),
	})
	return nil
}

// Close releases every added object's pooled symbol buffers. It
// synchronizes with Run: if the carousel is still in flight, Close
// blocks until Run returns, so cancel Run's context first (an infinite
// carousel never returns on its own). The sender cannot transmit
// afterwards.
func (s *Sender) Close() {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	for _, o := range s.objs {
		o.obj.Close()
	}
}

// Run drives the carousel until the configured rounds complete or ctx is
// cancelled. Cancellation is a graceful shutdown: Run stops between
// packets and returns ctx.Err().
func (s *Sender) Run(ctx context.Context) error {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if len(s.objs) == 0 {
		return fmt.Errorf("transport: sender has no objects")
	}
	defaultSched := s.cfg.Scheduler
	if defaultSched == nil {
		defaultSched = sched.TxModel4{}
	}
	startRound := s.cfg.StartRound
	if startRound < 0 {
		startRound = 0
	}
	// One O(1)-seed generator, reseeded per (round, object) from a
	// splitmix64 hash: schedules depend only on those coordinates,
	// never on how much of the carousel ran before — the resume
	// contract.
	rng := rand.New(&core.SplitMixSource{})
	var p Pacer
	if s.cfg.Pacer != nil {
		p = timedPacer{p: s.cfg.Pacer, waitNS: &s.pacerWait}
	} else {
		p = newPacer(s.cfg.Rate, s.cfg.Burst, &s.pacerWait)
	}
	scratch := make([]byte, 0, 2048)
	if startRound > 0 || s.cfg.StartPos > 0 {
		s.resumes.Inc()
	}
	batchSize := s.cfg.BatchSize
	if batchSize > maxSendBatch {
		batchSize = maxSendBatch
	}
	var batch *sendBatch
	if batchSize > 1 {
		batch = &sendBatch{
			size:  batchSize,
			buf:   make([]byte, 0, batchSize*2048),
			ends:  make([]int, 0, batchSize),
			views: make([]wire.Datagram, 0, batchSize),
		}
	}

	for round := startRound; s.cfg.Rounds <= 0 || round < s.cfg.Rounds; round++ {
		for i, o := range s.objs {
			sc := o.scheduler
			if sc == nil {
				sc = defaultSched
			}
			rng.Seed(core.DeriveSeed(s.cfg.Seed, uint64(round), uint64(i)))
			// Honour the object's Section-6 n_sent truncation, exactly
			// as session.Object.Send does for a single pass.
			o.sched = sc.Schedule(o.layout, rng).Truncate(o.nsent)
			o.cur = o.sched.Cursor()
		}
		if round == startRound && s.cfg.StartPos > 0 {
			// Resume mid-round: random access is O(1), so seeking every
			// object's cursor costs nothing.
			for _, o := range s.objs {
				pos := s.cfg.StartPos
				if pos > o.sched.Len() {
					pos = o.sched.Len()
				}
				o.cur.Seek(pos)
			}
		}
		if batch != nil {
			if err := s.roundBatched(ctx, p, batch, round); err != nil {
				return err
			}
			s.rounds.Add(1)
			if s.cfg.OnRound != nil {
				s.cfg.OnRound(round)
			}
			continue
		}
		// Round-robin interleave across objects: one packet from each
		// in turn, objects with longer schedules trailing off last. Each
		// object's cursor walks its schedule in batched draws.
		for remaining := len(s.objs); remaining > 0; {
			remaining = 0
			for _, o := range s.objs {
				id, ok := o.cur.Next()
				if !ok {
					continue
				}
				remaining++
				if err := p.Take(ctx, 1); err != nil {
					return err
				}
				var err error
				scratch, err = o.obj.AppendDatagram(id, scratch[:0])
				if err != nil {
					return fmt.Errorf("transport: encoding object %d: %w", o.obj.ObjectID(), err)
				}
				if err := s.conn.Send(scratch); err != nil {
					return fmt.Errorf("transport: send: %w", err)
				}
				s.packets.Inc()
				s.bytes.Add(uint64(len(scratch)))
				if !o.txStarted {
					o.txStarted = true
					if tr := s.cfg.Tracer; tr != nil {
						tr.Emit(obs.Event{
							Event:  obs.TraceFirstTx,
							Object: o.obj.ObjectID(),
							Packet: id,
							Round:  round,
							Bytes:  int64(len(scratch)),
						})
					}
				}
			}
		}
		s.rounds.Add(1)
		if s.cfg.OnRound != nil {
			s.cfg.OnRound(round)
		}
	}
	return nil
}

// maxSendBatch caps SenderConfig.BatchSize at the widths the layers
// below are built for: one StepMask on the loopback, one sendmmsg
// header array (and the kernel's GSO segment limit) on UDP.
const maxSendBatch = 64

// sendBatch is the vectorized round loop's reusable flush state: every
// datagram of a batch is encoded back to back into one packed buffer,
// and the per-datagram views handed to WriteBatch are materialized only
// at flush time (the packed buffer may move while the batch fills).
// All slices are reused across flushes, so the steady-state batched
// round allocates nothing.
type sendBatch struct {
	size   int
	buf    []byte // packed encodings of the pending datagrams
	ends   []int  // end offset of datagram i in buf
	views  []wire.Datagram
	traces []obs.Event // first_tx events deferred until the flush lands
}

// roundBatched is the vectorized inner loop of Run: the same
// round-robin walk as the scalar path, but datagrams accumulate in the
// batch and hit the conn size datagrams per kernel crossing. The
// carousel byte sequence is identical to the scalar loop's; only the
// grouping (and the pacer's debit granularity) changes.
func (s *Sender) roundBatched(ctx context.Context, p Pacer, b *sendBatch, round int) error {
	for remaining := len(s.objs); remaining > 0; {
		remaining = 0
		for _, o := range s.objs {
			id, ok := o.cur.Next()
			if !ok {
				continue
			}
			remaining++
			start := len(b.buf)
			var err error
			b.buf, err = o.obj.AppendDatagram(id, b.buf)
			if err != nil {
				return fmt.Errorf("transport: encoding object %d: %w", o.obj.ObjectID(), err)
			}
			b.ends = append(b.ends, len(b.buf))
			if !o.txStarted {
				o.txStarted = true
				if s.cfg.Tracer != nil {
					// Deferred: the event is emitted when the flush
					// actually hands the datagram to the conn.
					b.traces = append(b.traces, obs.Event{
						Event:  obs.TraceFirstTx,
						Object: o.obj.ObjectID(),
						Packet: id,
						Round:  round,
						Bytes:  int64(len(b.buf) - start),
					})
				}
			}
			if len(b.ends) == b.size {
				if err := s.flushBatch(ctx, p, b); err != nil {
					return err
				}
			}
		}
	}
	// A round boundary flushes the tail: rounds stay observable units
	// (OnRound fires with every datagram of the round on the wire).
	return s.flushBatch(ctx, p, b)
}

// flushBatch debits the pacer once for the whole pending batch, hands
// it to the conn in one batch write, and settles the deferred metrics
// and first_tx traces.
func (s *Sender) flushBatch(ctx context.Context, p Pacer, b *sendBatch) error {
	n := len(b.ends)
	if n == 0 {
		return nil
	}
	if err := p.Take(ctx, n); err != nil {
		return err
	}
	b.views = b.views[:0]
	start := 0
	for _, end := range b.ends {
		b.views = append(b.views, b.buf[start:end:end])
		start = end
	}
	if _, err := WriteBatch(s.conn, b.views); err != nil {
		return fmt.Errorf("transport: send batch: %w", err)
	}
	s.packets.Add(uint64(n))
	s.bytes.Add(uint64(len(b.buf)))
	s.batches.Inc()
	s.syscallsSaved.Add(uint64(n - 1))
	s.batchSizes.Observe(int64(n))
	if tr := s.cfg.Tracer; tr != nil {
		for i := range b.traces {
			tr.Emit(b.traces[i])
		}
	}
	b.traces = b.traces[:0]
	b.buf = b.buf[:0]
	b.ends = b.ends[:0]
	return nil
}

// Stats returns a snapshot of the sender's counters.
func (s *Sender) Stats() SenderStats {
	return SenderStats{
		PacketsSent:   s.packets.Load(),
		BytesSent:     s.bytes.Load(),
		Rounds:        s.rounds.Load(),
		PacerWaitNS:   s.pacerWait.Load(),
		Resumes:       s.resumes.Load(),
		Batches:       s.batches.Load(),
		SyscallsSaved: s.syscallsSaved.Load(),
	}
}
