package transport

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"fecperf/internal/wire"
)

// runDaemon starts a daemon over conn and returns a stop function that
// cancels it and waits for Run to return.
func runDaemon(t *testing.T, d *ReceiverDaemon) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()
	return func() {
		cancel()
		select {
		case err := <-done:
			if err != nil && err != context.Canceled {
				t.Errorf("daemon Run: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("daemon did not stop on cancel")
		}
	}
}

func TestReceiverDaemonDecodesLosslessBroadcast(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	file := testFile(t, 32<<10, 11)
	obj := encodeTestObject(t, file, 42, wire.CodeLDGMStaircase, 2.0, 1024)

	d := NewReceiverDaemon(hub.Receiver(nil, 4096), ReceiverConfig{})
	stop := runDaemon(t, d)
	defer stop()

	s := NewSender(hub.Sender(), SenderConfig{Rounds: 1, Seed: 3})
	if err := s.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	data, err := d.WaitObject(ctx, 42)
	if err != nil {
		t.Fatalf("WaitObject: %v", err)
	}
	if !bytes.Equal(data, file) {
		t.Fatal("decoded object differs from original")
	}
	if got, ok := d.Object(42); !ok || !bytes.Equal(got, file) {
		t.Fatal("Object(42) does not return the decoded bytes")
	}
	if !d.Completed(42) {
		t.Fatal("Completed(42) = false after decode")
	}
}

func TestReceiverDaemonMultiObjectAndStats(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	files := map[uint32][]byte{
		1: testFile(t, 8<<10, 21),
		2: testFile(t, 12<<10, 22),
		3: testFile(t, 6<<10, 23),
	}
	var completions sync.Map
	d := NewReceiverDaemon(hub.Receiver(nil, 65536), ReceiverConfig{
		OnComplete: func(id uint32, data []byte) { completions.Store(id, data) },
	})
	stop := runDaemon(t, d)
	defer stop()

	s := NewSender(hub.Sender(), SenderConfig{Rounds: 2, Seed: 4})
	for id, f := range files {
		if err := s.Add(encodeTestObject(t, f, id, wire.CodeLDGMTriangle, 2.0, 512)); err != nil {
			t.Fatal(err)
		}
	}
	// Inject garbage and a truncated datagram mid-stream; both must be
	// counted and ignored.
	tx := hub.Sender()
	tx.Send([]byte("not a fec packet, definitely too long to be short")) //nolint:errcheck
	tx.Send([]byte{0xFE})                                                //nolint:errcheck
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for id, f := range files {
		data, err := d.WaitObject(ctx, id)
		if err != nil {
			t.Fatalf("WaitObject(%d): %v", id, err)
		}
		if !bytes.Equal(data, f) {
			t.Fatalf("object %d corrupted", id)
		}
		if got, ok := completions.Load(id); !ok || !bytes.Equal(got.([]byte), f) {
			t.Fatalf("OnComplete missing or wrong for object %d", id)
		}
	}
	st := d.Stats()
	if st.ObjectsDecoded != 3 {
		t.Errorf("ObjectsDecoded = %d, want 3", st.ObjectsDecoded)
	}
	if st.ObjectsStarted != 3 {
		t.Errorf("ObjectsStarted = %d, want 3", st.ObjectsStarted)
	}
	if st.PacketsBad != 2 {
		t.Errorf("PacketsBad = %d, want 2", st.PacketsBad)
	}
	// Round 2 arrives entirely after each object decoded in round 1.
	if st.PacketsLate == 0 {
		t.Error("PacketsLate = 0, want late carousel packets counted")
	}
	if st.PacketsSeen != st.PacketsIngested+st.PacketsBad+st.PacketsLate+st.PacketsInconsistent+st.PacketsTruncated {
		t.Errorf("stats do not add up: %+v", st)
	}
}

func TestReceiverDaemonLRUEviction(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	d := NewReceiverDaemon(hub.Receiver(nil, 65536), ReceiverConfig{MaxInFlight: 2})
	stop := runDaemon(t, d)

	// Send one datagram from each of 5 objects: every arrival past the
	// second must evict the stalest partial object.
	tx := hub.Sender()
	for id := uint32(1); id <= 5; id++ {
		obj := encodeTestObject(t, testFile(t, 4<<10, int64(id)), id, wire.CodeLDGMStaircase, 2.0, 512)
		dgram, err := obj.Datagram(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Send(dgram); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().PacketsSeen < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	st := d.Stats()
	if st.ObjectsStarted != 5 {
		t.Errorf("ObjectsStarted = %d, want 5", st.ObjectsStarted)
	}
	if st.ObjectsEvicted != 3 {
		t.Errorf("ObjectsEvicted = %d, want 3 (bound of 2 in flight)", st.ObjectsEvicted)
	}
}

func TestReceiverDaemonCompletedBytesBound(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	d := NewReceiverDaemon(hub.Receiver(nil, 65536), ReceiverConfig{MaxCompleted: 2})
	stop := runDaemon(t, d)
	defer stop()

	s := NewSender(hub.Sender(), SenderConfig{Rounds: 1, Seed: 9})
	for id := uint32(1); id <= 4; id++ {
		if err := s.Add(encodeTestObject(t, testFile(t, 2<<10, int64(10+id)), id, wire.CodeRSE, 1.5, 256)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().ObjectsDecoded < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := d.Stats().ObjectsDecoded; got != 4 {
		t.Fatalf("ObjectsDecoded = %d, want 4", got)
	}
	retained := 0
	for id := uint32(1); id <= 4; id++ {
		if !d.Completed(id) {
			t.Errorf("Completed(%d) = false", id)
		}
		if _, ok := d.Object(id); ok {
			retained++
		}
	}
	if retained != 2 {
		t.Errorf("retained %d decoded objects, want 2 (MaxCompleted)", retained)
	}
}

// TestReceiverDaemonConcurrentSenders drives one daemon from four
// concurrent senders over a shared loopback — the -race acceptance
// scenario: fan-in delivery, atomic stats reads, and waiter wakeups all
// running at once.
func TestReceiverDaemonConcurrentSenders(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	const nsenders = 4
	files := make(map[uint32][]byte, nsenders)
	for id := uint32(1); id <= nsenders; id++ {
		files[id] = testFile(t, 16<<10, int64(30+id))
	}
	d := NewReceiverDaemon(hub.Receiver(nil, 1<<17), ReceiverConfig{MaxCompleted: nsenders})
	stop := runDaemon(t, d)
	defer stop()

	var wg sync.WaitGroup
	for id := uint32(1); id <= nsenders; id++ {
		obj := encodeTestObject(t, files[id], id, wire.CodeLDGMStaircase, 2.0, 512)
		s := NewSender(hub.Sender(), SenderConfig{Rounds: 2, Seed: int64(id)})
		if err := s.Add(obj); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Run(context.Background()); err != nil {
				t.Errorf("sender: %v", err)
			}
		}()
	}
	// Concurrent stats polling while senders run.
	pollCtx, pollCancel := context.WithCancel(context.Background())
	var poll sync.WaitGroup
	poll.Add(1)
	go func() {
		defer poll.Done()
		for pollCtx.Err() == nil {
			_ = d.Stats()
			time.Sleep(time.Millisecond)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for id, f := range files {
		data, err := d.WaitObject(ctx, id)
		if err != nil {
			t.Fatalf("WaitObject(%d): %v", id, err)
		}
		if !bytes.Equal(data, f) {
			t.Fatalf("object %d corrupted under concurrency", id)
		}
	}
	wg.Wait()
	pollCancel()
	poll.Wait()
}

func TestWaitObjectCancellation(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	d := NewReceiverDaemon(hub.Receiver(nil, 16), ReceiverConfig{})
	stop := runDaemon(t, d)
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := d.WaitObject(ctx, 999); err != context.DeadlineExceeded {
		t.Fatalf("WaitObject = %v, want deadline exceeded", err)
	}
}

// TestReceiverDaemonRejectsForgedHugeOTI sends a CRC-valid datagram
// whose OTI announces a billion-packet object; the daemon must discard
// it before the decoder constructor allocates for it.
func TestReceiverDaemonRejectsForgedHugeOTI(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	d := NewReceiverDaemon(hub.Receiver(nil, 16), ReceiverConfig{})
	stop := runDaemon(t, d)
	defer stop()

	forged, err := (&wire.Packet{
		Family:   wire.CodeLDGMStaircase,
		ObjectID: 666,
		PacketID: 0,
		K:        1 << 30,
		N:        1<<30 + 1,
		Payload:  []byte{1},
	}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.Sender().Send(forged); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().PacketsSeen < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := d.Stats()
	if st.PacketsBad != 1 || st.ObjectsStarted != 0 {
		t.Fatalf("forged OTI not rejected: %+v", st)
	}
}

// TestReceiverDaemonUnopenablePacketsDoNotEvict floods a full daemon
// with datagrams that cannot open reassembly state (zero-length
// symbols); live in-flight objects must survive.
func TestReceiverDaemonUnopenablePacketsDoNotEvict(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	d := NewReceiverDaemon(hub.Receiver(nil, 4096), ReceiverConfig{MaxInFlight: 2})
	stop := runDaemon(t, d)
	defer stop()
	tx := hub.Sender()

	// Fill the two in-flight slots with real partial objects.
	for id := uint32(1); id <= 2; id++ {
		obj := encodeTestObject(t, testFile(t, 4<<10, int64(id)), id, wire.CodeLDGMStaircase, 2.0, 512)
		dgram, err := obj.Datagram(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Send(dgram); err != nil {
			t.Fatal(err)
		}
	}
	// Flood with unopenable state: zero-length payloads, fresh IDs.
	for id := uint32(100); id < 150; id++ {
		bad, err := (&wire.Packet{
			Family: wire.CodeLDGMStaircase, ObjectID: id, K: 4, N: 8,
		}).Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Send(bad); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().PacketsSeen < 52 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := d.Stats()
	if st.ObjectsEvicted != 0 {
		t.Fatalf("unopenable packets evicted live objects: %+v", st)
	}
	if st.PacketsBad != 50 {
		t.Errorf("PacketsBad = %d, want 50", st.PacketsBad)
	}
}

// TestReceiverDaemonCountsTruncation sends a datagram larger than the
// daemon's MTU; it must be counted as truncated, not as generic
// corruption — the operator's clue that sender payload > receiver MTU.
func TestReceiverDaemonCountsTruncation(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	d := NewReceiverDaemon(hub.Receiver(nil, 16), ReceiverConfig{MTU: 256})
	stop := runDaemon(t, d)
	defer stop()

	obj := encodeTestObject(t, testFile(t, 2<<10, 8), 5, wire.CodeLDGMStaircase, 2.0, 512)
	dgram, err := obj.Datagram(0) // 552 bytes > MTU 256
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.Sender().Send(dgram); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().PacketsSeen < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := d.Stats()
	if st.PacketsTruncated != 1 || st.PacketsBad != 0 {
		t.Fatalf("oversized datagram not classified as truncated: %+v", st)
	}
}
