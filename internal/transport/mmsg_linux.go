//go:build linux && (amd64 || arm64)

// Kernel-batched UDP datapath: sendmmsg/recvmmsg plus UDP generic
// segmentation offload (GSO), straight on the raw syscalls — the stdlib
// syscall package has Msghdr/Iovec/cmsg plumbing but froze before the
// mmsg calls, so the struct mmsghdr and the syscall numbers
// (mmsg_sysnum_*.go) live here.
//
// The shape of the win: the scalar path pays one write(2) per datagram
// (~1-2µs of mode switches and UDP stack entry each). sendmmsg moves up
// to 64 headers per crossing, and GSO collapses a run of equal-size
// datagrams into ONE header the kernel segments after the socket-layer
// work is done — so a 64-packet carousel batch costs one syscall and
// one qdisc traversal. GSO support is probed per socket at dial time
// (UDP_SEGMENT dates to Linux 4.18) and degrades at runtime: a kernel
// or NIC that rejects a segmented send disables GSO on that conn and
// the batch is retried as plain sendmmsg, which itself degrades to the
// portable per-datagram path only on platforms without the syscalls
// (mmsg_fallback.go).

package transport

import (
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"

	"fecperf/internal/wire"
)

const (
	// solUDP/udpSegment are SOL_UDP and the UDP_SEGMENT socket option /
	// cmsg type (Linux 4.18+); the frozen syscall package predates them.
	solUDP     = 17
	udpSegment = 103

	// maxMsgs bounds mmsghdrs per sendmmsg/recvmmsg crossing and
	// maxWriteDgrams the datagrams one send crossing may cover (a GSO
	// header absorbs a whole run, so 64 headers can carry far more than
	// 64 datagrams; the cap keeps the iovec scratch bounded).
	maxMsgs        = 64
	maxWriteDgrams = 256

	// maxGSOSegs is the kernel's UDP_MAX_SEGMENTS; maxGSOBytes keeps a
	// segmented super-datagram under the 64 KiB IP length limit with
	// headroom for headers.
	maxGSOSegs  = 64
	maxGSOBytes = 63 << 10
)

// mmsghdr mirrors the kernel's struct mmsghdr on 64-bit Linux: a msghdr
// plus the per-message byte count sendmmsg/recvmmsg fill in. Go pads
// the struct to 8-byte alignment exactly as the kernel ABI does.
type mmsghdr struct {
	hdr  syscall.Msghdr
	nrcv uint32
	_    [4]byte
}

// udpBatch is the per-conn state of the batched datapath: the raw fd
// handle, the GSO capability bit, and reusable syscall scratch (headers,
// iovecs, cmsg buffers) so steady-state batch I/O allocates nothing.
// Write and read scratch are guarded separately, preserving the Conn
// contract that sends and a blocking receive may overlap.
type udpBatch struct {
	raw syscall.RawConn
	gso atomic.Bool // probed at dial, cleared on a rejected GSO send

	wmu   sync.Mutex
	wiovs []syscall.Iovec
	wmsgs []mmsghdr
	wsegs []int    // datagrams covered by wmsgs[i]
	woob  [][]byte // one UDP_SEGMENT cmsg buffer per header slot

	rmu   sync.Mutex
	riovs []syscall.Iovec
	rmsgs []mmsghdr
}

// initBatch wires the batched datapath onto a freshly built conn and
// probes GSO support (a zero UDP_SEGMENT setsockopt succeeds exactly
// when the kernel knows the option).
func (u *udpConn) initBatch() {
	raw, err := u.c.SyscallConn()
	if err != nil {
		return // batch calls fall back to the scalar loop
	}
	u.batch.raw = raw
	gso := false
	ctlErr := raw.Control(func(fd uintptr) {
		gso = syscall.SetsockoptInt(int(fd), solUDP, udpSegment, 0) == nil
	})
	u.batch.gso.Store(ctlErr == nil && gso)
}

// GSOEnabled reports whether batched writes on this conn currently use
// UDP generic segmentation offload. It starts at the dial-time probe
// result and latches false if the kernel ever rejects a segmented send.
func (u *udpConn) GSOEnabled() bool { return u.batch.gso.Load() }

// WriteBatch implements BatchConn via sendmmsg, coalescing runs of
// equal-size datagrams into single GSO headers when the socket supports
// it. Async ICMP errors are swallowed per datagram run, matching Send.
func (u *udpConn) WriteBatch(batch []wire.Datagram) (int, error) {
	if len(batch) == 0 {
		return 0, nil
	}
	b := &u.batch
	if b.raw == nil {
		return writeBatchScalar(u, batch)
	}
	b.wmu.Lock()
	defer b.wmu.Unlock()
	sent := 0
	for sent < len(batch) {
		n, err := u.writeSome(batch[sent:])
		sent += n
		if err != nil {
			return sent, err
		}
	}
	return sent, nil
}

// writeSome builds one sendmmsg crossing from the front of batch and
// returns how many datagrams it disposed of (sent or, for swallowed
// ICMP feedback, dropped — Send's semantics). A zero count with a nil
// error means "retry" (the GSO path was just disabled).
func (u *udpConn) writeSome(batch []wire.Datagram) (int, error) {
	b := &u.batch
	gso := b.gso.Load()

	// Pass 1: one iovec per datagram, grouped into runs that share a
	// header. A run is either a single datagram or, under GSO, up to
	// maxGSOSegs equal-length datagrams totalling at most maxGSOBytes.
	b.wiovs = b.wiovs[:0]
	b.wsegs = b.wsegs[:0]
	dgrams := 0
	for dgrams < len(batch) && len(b.wsegs) < maxMsgs && dgrams < maxWriteDgrams {
		d := batch[dgrams]
		run := 1
		if gso && len(d) > 0 && len(d) <= maxGSOBytes {
			maxRun := maxGSOBytes / len(d)
			if maxRun > maxGSOSegs {
				maxRun = maxGSOSegs
			}
			for run < maxRun && dgrams+run < len(batch) &&
				dgrams+run < maxWriteDgrams &&
				len(batch[dgrams+run]) == len(d) {
				run++
			}
		}
		for i := 0; i < run; i++ {
			seg := batch[dgrams+i]
			iov := syscall.Iovec{Len: uint64(len(seg))}
			if len(seg) > 0 {
				iov.Base = &seg[0]
			}
			b.wiovs = append(b.wiovs, iov)
		}
		b.wsegs = append(b.wsegs, run)
		dgrams += run
	}

	// Pass 2: headers over stable iovec memory. A multi-segment run
	// carries a UDP_SEGMENT cmsg telling the kernel where to cut.
	b.wmsgs = b.wmsgs[:0]
	gsoUsed := false
	iov := 0
	for i, run := range b.wsegs {
		var m mmsghdr
		m.hdr.Iov = &b.wiovs[iov]
		m.hdr.Iovlen = uint64(run)
		if run > 1 {
			gsoUsed = true
			oob := b.oobFor(i, uint16(len(batch[iov])))
			m.hdr.Control = &oob[0]
			m.hdr.SetControllen(len(oob))
		}
		b.wmsgs = append(b.wmsgs, m)
		iov += run
	}

	done := 0 // datagrams disposed of
	hdr := 0  // headers handed to the kernel
	for hdr < len(b.wmsgs) {
		var n uintptr
		var errno syscall.Errno
		werr := b.raw.Write(func(fd uintptr) bool {
			n, _, errno = syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&b.wmsgs[hdr])),
				uintptr(len(b.wmsgs)-hdr), 0, 0, 0)
			return errno != syscall.EAGAIN
		})
		if werr != nil {
			return done, werr
		}
		switch errno {
		case 0:
			for i := 0; i < int(n); i++ {
				done += b.wsegs[hdr+i]
			}
			hdr += int(n)
		case syscall.EINTR:
			// retry the same position
		case syscall.ECONNREFUSED, syscall.EHOSTUNREACH, syscall.ENETUNREACH:
			// Async ICMP feedback on a connected socket: the kernel
			// reports a receiver's absence and drops the head message.
			// A broadcast is feedback-free — swallow it and move on,
			// exactly as the scalar Send does.
			done += b.wsegs[hdr]
			hdr++
		case syscall.EINVAL, syscall.EIO, syscall.EOPNOTSUPP, syscall.EMSGSIZE:
			if gsoUsed {
				// The kernel (or the path's NIC) rejected a segmented
				// send: latch GSO off and let the caller rebuild this
				// crossing as plain sendmmsg.
				b.gso.Store(false)
				return done, nil
			}
			return done, errno
		default:
			return done, errno
		}
	}
	return done, nil
}

// oobFor returns header slot i's reusable UDP_SEGMENT cmsg buffer,
// filled for the given segment size.
func (b *udpBatch) oobFor(i int, segSize uint16) []byte {
	for len(b.woob) <= i {
		b.woob = append(b.woob, make([]byte, syscall.CmsgSpace(2)))
	}
	oob := b.woob[i]
	h := (*syscall.Cmsghdr)(unsafe.Pointer(&oob[0]))
	h.Level = solUDP
	h.Type = udpSegment
	h.SetLen(syscall.CmsgLen(2))
	*(*uint16)(unsafe.Pointer(&oob[syscall.CmsgLen(0)])) = segSize
	return oob
}

// ReadBatch implements BatchConn via recvmmsg: it parks on the runtime
// poller until the socket is readable (honouring the read deadline and
// Close exactly like Recv), then drains up to len(bufs) datagrams in
// one crossing.
func (u *udpConn) ReadBatch(bufs []wire.Datagram) (int, error) {
	if len(bufs) == 0 {
		return 0, nil
	}
	b := &u.batch
	if b.raw == nil {
		return readBatchScalar(u, bufs)
	}
	b.rmu.Lock()
	defer b.rmu.Unlock()
	n := len(bufs)
	if n > maxMsgs {
		n = maxMsgs
	}
	b.riovs = b.riovs[:0]
	b.rmsgs = b.rmsgs[:0]
	for i := 0; i < n; i++ {
		iov := syscall.Iovec{Len: uint64(len(bufs[i]))}
		if len(bufs[i]) > 0 {
			iov.Base = &bufs[i][0]
		}
		b.riovs = append(b.riovs, iov)
	}
	for i := 0; i < n; i++ {
		var m mmsghdr
		m.hdr.Iov = &b.riovs[i]
		m.hdr.Iovlen = 1
		b.rmsgs = append(b.rmsgs, m)
	}
	var got uintptr
	for {
		var errno syscall.Errno
		rerr := b.raw.Read(func(fd uintptr) bool {
			got, _, errno = syscall.Syscall6(sysRECVMMSG, fd,
				uintptr(unsafe.Pointer(&b.rmsgs[0])),
				uintptr(n), syscall.MSG_DONTWAIT, 0, 0)
			return errno != syscall.EAGAIN
		})
		if rerr != nil {
			return 0, rerr
		}
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			return 0, errno
		}
		break
	}
	for i := 0; i < int(got); i++ {
		bufs[i] = bufs[i][:b.rmsgs[i].nrcv]
	}
	return int(got), nil
}
