package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"fecperf/internal/channel"
	"fecperf/internal/core"
	"fecperf/internal/sched"
	"fecperf/internal/session"
	"fecperf/internal/wire"
)

// castCollect runs a full cast → loopback(ch) → collect of data and
// returns the collected bytes. The loopback queue is sized to hold the
// whole cast, so the only losses are the channel's — deterministic for
// a seeded channel.
func castCollect(t *testing.T, data []byte, ch func() core.Channel,
	casterCfg CasterConfig, collectorCfg CollectorConfig) []byte {
	t.Helper()
	hub := NewLoopback()
	defer hub.Close()

	var impairment core.Channel
	if ch != nil {
		impairment = ch()
	}
	rxConn := hub.Receiver(impairment, 1<<18)

	var out bytes.Buffer
	col := NewCollector(rxConn, &out, collectorCfg)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	var colErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		colErr = col.Run(ctx)
	}()

	caster, err := NewCaster(hub.Sender(), bytes.NewReader(data), casterCfg)
	if err != nil {
		t.Fatalf("NewCaster: %v", err)
	}
	if err := caster.Run(ctx); err != nil {
		t.Fatalf("caster.Run: %v", err)
	}
	wg.Wait()
	if colErr != nil {
		t.Fatalf("collector.Run: %v (progress %+v, stats %+v)", colErr, col.Progress(), col.Stats())
	}
	return out.Bytes()
}

func TestCastCollectLossless(t *testing.T) {
	data := make([]byte, 1<<20+12345) // deliberately not a chunk multiple
	rand.New(rand.NewSource(1)).Read(data)

	var progress []CastProgress
	got := castCollect(t, data, nil,
		CasterConfig{
			BaseObjectID: 7,
			K:            64, PayloadSize: 512, Ratio: 1.5,
			Window: 4, Rounds: 2, Seed: 9,
			OnProgress: func(p CastProgress) { progress = append(progress, p) },
		},
		CollectorConfig{BaseObjectID: 7})
	if !bytes.Equal(got, data) {
		t.Fatalf("collected %d bytes differ from cast %d bytes", len(got), len(data))
	}
	if len(progress) == 0 || !progress[len(progress)-1].Done {
		t.Errorf("caster progress missing or not Done: %+v", progress)
	}
	if progress[len(progress)-1].BytesRead != int64(len(data)) {
		t.Errorf("final BytesRead = %d, want %d", progress[len(progress)-1].BytesRead, len(data))
	}
}

func TestCastCollectGilbert(t *testing.T) {
	data := make([]byte, 3<<20)
	rand.New(rand.NewSource(2)).Read(data)

	var colProgress []CollectProgress
	got := castCollect(t, data,
		func() core.Channel {
			return channel.NewGilbert(0.01, 0.5, rand.New(rand.NewSource(42)))
		},
		CasterConfig{
			BaseObjectID: 100,
			Family:       wire.CodeRSE,
			K:            128, PayloadSize: 1024, Ratio: 1.5,
			Window: 4, Rounds: 2, Seed: 3,
		},
		CollectorConfig{
			BaseObjectID: 100,
			OnProgress:   func(p CollectProgress) { colProgress = append(colProgress, p) },
		})
	if !bytes.Equal(got, data) {
		t.Fatalf("collected bytes differ after Gilbert loss")
	}
	if len(colProgress) == 0 {
		t.Fatal("no collector progress callbacks")
	}
	last := colProgress[len(colProgress)-1]
	if last.BytesWritten != int64(len(data)) {
		t.Errorf("final BytesWritten = %d, want %d", last.BytesWritten, len(data))
	}
	// The trailing manifest must have announced the train's true length
	// by the last callback.
	if last.ChunksTotal < 0 || last.ChunksWritten != last.ChunksTotal {
		t.Errorf("final progress %+v does not close the train", last)
	}
}

func TestCastCollectMixedFamilies(t *testing.T) {
	// LDGM chunks still ship a Reed-Solomon manifest: families mix on
	// one train because every datagram is self-describing.
	data := make([]byte, 2<<20)
	rand.New(rand.NewSource(3)).Read(data)
	got := castCollect(t, data, nil,
		CasterConfig{
			BaseObjectID: 1,
			Family:       wire.CodeLDGMStaircase,
			K:            512, PayloadSize: 1024, Ratio: 2.5,
			Window: 2, Rounds: 2, Seed: 5,
		},
		CollectorConfig{BaseObjectID: 1})
	if !bytes.Equal(got, data) {
		t.Fatal("LDGM-chunk train did not round-trip")
	}
}

func TestCastEmptyStream(t *testing.T) {
	got := castCollect(t, nil, nil,
		CasterConfig{BaseObjectID: 5, K: 16, PayloadSize: 256, Seed: 1},
		CollectorConfig{BaseObjectID: 5})
	if len(got) != 0 {
		t.Fatalf("empty stream collected %d bytes", len(got))
	}
}

func TestCasterManifestAndStats(t *testing.T) {
	data := make([]byte, 100000)
	rand.New(rand.NewSource(4)).Read(data)
	hub := NewLoopback()
	defer hub.Close()
	// No receivers: the cast still runs (broadcast to nobody).
	c, err := NewCaster(hub.Sender(), bytes.NewReader(data),
		CasterConfig{K: 32, PayloadSize: 512, Ratio: 1.5, Window: 2, Rounds: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Manifest(); ok {
		t.Error("Manifest available before Run")
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	m, ok := c.Manifest()
	if !ok {
		t.Fatal("Manifest unavailable after Run")
	}
	chunkData := session.ChunkDataSize(32, 512)
	wantChunks := (len(data) + chunkData - 1) / chunkData
	if int(m.ChunkCount) != wantChunks || m.TotalSize != uint64(len(data)) {
		t.Errorf("manifest %+v, want %d chunks of %d total bytes", m, wantChunks, len(data))
	}
	st := c.Stats()
	if st.BytesRead != uint64(len(data)) || st.ChunksCast != uint64(wantChunks) || st.PacketsSent == 0 {
		t.Errorf("stats %+v", st)
	}
	if err := c.Run(context.Background()); err == nil {
		t.Error("second Run succeeded")
	}
}

func TestCollectorOutOfOrderBound(t *testing.T) {
	// Erase exactly the first datagram: chunk 0 then completes one
	// interleave position after chunks 1..3, so the collector buffers 3
	// out-of-order chunks. MaxPending 2 must fail, 3 must succeed —
	// deterministically, via a trace channel.
	chunkData := session.ChunkDataSize(16, 256)
	data := make([]byte, 4*chunkData)
	rand.New(rand.NewSource(5)).Read(data)
	trace := func() core.Channel {
		return &channel.Trace{Pattern: []bool{true}, NoWrap: true}
	}
	cfg := CasterConfig{
		BaseObjectID: 30, K: 16, PayloadSize: 256, Ratio: 1.5,
		Window: 4, Rounds: 1, Seed: 2, Scheduler: sched.TxModel1{},
	}

	got := castCollect(t, data, trace, cfg, CollectorConfig{BaseObjectID: 30, MaxPending: 3})
	if !bytes.Equal(got, data) {
		t.Fatal("MaxPending=3 collect did not round-trip")
	}

	hub := NewLoopback()
	defer hub.Close()
	rx := hub.Receiver(trace(), 1<<16)
	var out bytes.Buffer
	col := NewCollector(rx, &out, CollectorConfig{BaseObjectID: 30, MaxPending: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- col.Run(ctx) }()
	caster, err := NewCaster(hub.Sender(), bytes.NewReader(data), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := caster.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("MaxPending=2 err = %v, want out-of-order overflow", err)
	}
}

func TestCollectorIgnoresForeignObjects(t *testing.T) {
	// A collector sharing its conn with unrelated traffic — e.g. a
	// whole-object carousel whose IDs sit below the train's base, which
	// wrap mod 2^32 to astronomic chunk indexes — must not let those
	// objects poison the reorder buffer (MaxPending 2 here, three
	// foreign objects) or stall completion.
	hub := NewLoopback()
	defer hub.Close()
	rx := hub.Receiver(nil, 1<<16)
	var out bytes.Buffer
	col := NewCollector(rx, &out, CollectorConfig{BaseObjectID: 7, MaxPending: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- col.Run(ctx) }()

	foreign := NewSender(hub.Sender(), SenderConfig{Rounds: 1, Seed: 3})
	for id := uint32(1); id <= 3; id++ {
		obj, err := session.EncodeObject(bytes.Repeat([]byte{byte(id)}, 100), session.SenderConfig{
			ObjectID: id, Family: wire.CodeRSE, Ratio: 1.5, PayloadSize: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := foreign.Add(obj); err != nil {
			t.Fatal(err)
		}
	}
	if err := foreign.Run(ctx); err != nil {
		t.Fatal(err)
	}
	foreign.Close()

	data := make([]byte, 3*session.ChunkDataSize(16, 256))
	rand.New(rand.NewSource(9)).Read(data)
	caster, err := NewCaster(hub.Sender(), bytes.NewReader(data),
		CasterConfig{BaseObjectID: 7, K: 16, PayloadSize: 256, Ratio: 1.5, Window: 3, Rounds: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := caster.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("collector failed amid foreign traffic: %v", err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("collected bytes differ")
	}
}

func TestCollectorWriterError(t *testing.T) {
	data := make([]byte, 200000)
	rand.New(rand.NewSource(6)).Read(data)
	hub := NewLoopback()
	defer hub.Close()
	rx := hub.Receiver(nil, 1<<16)
	col := NewCollector(rx, failWriter{}, CollectorConfig{BaseObjectID: 9})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- col.Run(ctx) }()
	caster, err := NewCaster(hub.Sender(), bytes.NewReader(data),
		CasterConfig{BaseObjectID: 9, K: 32, PayloadSize: 512, Window: 2, Rounds: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := caster.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil || !strings.Contains(err.Error(), "writing chunk") {
		t.Fatalf("collector err = %v, want write error", err)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

func TestCasterCancel(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Pace the cast slowly so cancellation lands mid-stream.
	c, err := NewCaster(hub.Sender(), neverEndingReader{},
		CasterConfig{K: 16, PayloadSize: 256, Rate: 200, Burst: 4, Window: 1, Rounds: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if err := c.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled cast err = %v, want context.Canceled", err)
	}
}

type neverEndingReader struct{}

func (neverEndingReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(i)
	}
	return len(p), nil
}

func TestNewCasterConfigErrors(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	for _, cfg := range []CasterConfig{
		{K: 1, PayloadSize: 4}, // no room past the length prefix
		{Ratio: 0.5},           // expansion below 1
		{K: -1},                // negative
		{Window: -2},           // negative
	} {
		if _, err := NewCaster(hub.Sender(), bytes.NewReader(nil), cfg); err == nil {
			t.Errorf("NewCaster(%+v) succeeded, want error", cfg)
		}
	}
}

func TestCastProgressString(t *testing.T) {
	// Compile-time-ish sanity that the progress type formats cleanly in
	// logs (no Stringer, but %+v must not recurse).
	_ = fmt.Sprintf("%+v", CastProgress{ChunksCast: 1})
}
