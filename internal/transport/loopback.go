package transport

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"fecperf/internal/channel"
	"fecperf/internal/core"
	"fecperf/internal/wire"
)

// DefaultLoopbackQueue is the per-receiver queue depth when
// Loopback.Receiver is called with queue <= 0. It plays the role of the
// kernel socket buffer: a sender bursting faster than the receiver drains
// overflows it and the excess is dropped, exactly as UDP would.
const DefaultLoopbackQueue = 1024

// Loopback is an in-memory broadcast medium: every datagram written to a
// sender endpoint is offered to every receiver endpoint, each behind its
// own loss process. It turns any core.Channel — Gilbert bursts, Bernoulli
// loss, recorded traces — into a live network impairment, so integration
// tests and local experiments can exercise the full transport stack with
// deterministic loss and zero sockets.
type Loopback struct {
	mu        sync.Mutex
	receivers []*loopConn
	closed    bool
}

// NewLoopback returns an empty medium with no receivers attached.
func NewLoopback() *Loopback {
	return &Loopback{}
}

// Sender returns an endpoint whose Send fans out to every receiver
// attached at transmission time. Multiple senders may share one medium.
func (l *Loopback) Sender() Conn {
	return &loopSender{hub: l}
}

// Receiver attaches a receiving endpoint behind the given loss process
// (nil = lossless). queue <= 0 selects DefaultLoopbackQueue. The channel
// is owned by the endpoint afterwards; do not share one core.Channel
// between receivers — the models are stateful.
func (l *Loopback) Receiver(ch core.Channel, queue int) Conn {
	c := newLoopConn(l, queue)
	c.ch = ch
	return l.attach(c)
}

// ReceiverStepper attaches a receiving endpoint whose loss process is
// the batched stepper st over a splitmix64 stream seeded with seed. It
// is the batch-native sibling of Receiver: a WriteBatch fan-out steps
// the chain in 64-wide StepMask calls — one lock acquisition and no
// interface dispatch per batch — while scalar Sends step it one mask
// bit at a time, so the loss sequence is bit-identical either way (and
// identical to the scalar chain the stepper's factory builds over a
// core.SplitMixSource with the same seed). queue <= 0 selects
// DefaultLoopbackQueue.
func (l *Loopback) ReceiverStepper(st channel.Stepper, seed int64, queue int) Conn {
	c := newLoopConn(l, queue)
	c.useStepper = true
	c.stepper = st
	c.chState = uint64(seed)
	return l.attach(c)
}

func newLoopConn(l *Loopback, queue int) *loopConn {
	if queue <= 0 {
		queue = DefaultLoopbackQueue
	}
	return &loopConn{
		hub:      l,
		queue:    make(chan []byte, queue),
		closed:   make(chan struct{}),
		deadline: newDeadline(),
	}
}

func (l *Loopback) attach(c *loopConn) Conn {
	l.mu.Lock()
	if l.closed {
		// Attaching to a closed medium yields an already-closed conn
		// (Recv returns ErrClosed immediately) rather than one that
		// blocks forever waiting on a dead hub.
		l.mu.Unlock()
		c.closeLocked()
		return c
	}
	l.receivers = append(l.receivers, c)
	l.mu.Unlock()
	return c
}

// Close detaches and closes every receiver and fails future sends.
func (l *Loopback) Close() error {
	l.mu.Lock()
	rxs := l.receivers
	l.receivers = nil
	l.closed = true
	l.mu.Unlock()
	for _, c := range rxs {
		c.closeLocked()
	}
	return nil
}

// broadcast offers one datagram to every attached receiver.
func (l *Loopback) broadcast(datagram []byte) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("transport: loopback: %w", ErrClosed)
	}
	rxs := make([]*loopConn, len(l.receivers))
	copy(rxs, l.receivers)
	l.mu.Unlock()
	// One shared copy for all receivers: queued datagrams are read-only
	// (Recv copies into the caller's buffer), so fan-out need not clone
	// per receiver.
	buf := append(make([]byte, 0, len(datagram)), datagram...)
	for _, c := range rxs {
		c.deliver(buf)
	}
	return nil
}

// broadcastBatch offers a batch to every attached receiver. The copies
// all receivers share live in one backing allocation, and each receiver
// applies its loss model to the whole batch under a single lock.
func (l *Loopback) broadcastBatch(batch []wire.Datagram) (int, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, fmt.Errorf("transport: loopback: %w", ErrClosed)
	}
	rxs := make([]*loopConn, len(l.receivers))
	copy(rxs, l.receivers)
	l.mu.Unlock()
	total := 0
	for _, d := range batch {
		total += len(d)
	}
	backing := make([]byte, 0, total)
	copies := make([][]byte, len(batch))
	for i, d := range batch {
		start := len(backing)
		backing = append(backing, d...)
		copies[i] = backing[start:len(backing):len(backing)]
	}
	for _, c := range rxs {
		c.deliverBatch(copies)
	}
	return len(batch), nil
}

// loopSender is the transmitting endpoint of a Loopback.
type loopSender struct {
	hub    *Loopback
	closed atomic.Bool
}

func (s *loopSender) Send(datagram []byte) error {
	if s.closed.Load() {
		return fmt.Errorf("transport: loopback sender: %w", ErrClosed)
	}
	return s.hub.broadcast(datagram)
}

// WriteBatch implements BatchConn: the whole batch crosses the hub with
// one lock round trip and one backing copy per receiver set, and each
// receiver steps its loss model over the batch in 64-wide masks.
func (s *loopSender) WriteBatch(batch []wire.Datagram) (int, error) {
	if s.closed.Load() {
		return 0, fmt.Errorf("transport: loopback sender: %w", ErrClosed)
	}
	return s.hub.broadcastBatch(batch)
}

func (s *loopSender) Recv([]byte) (int, error) {
	return 0, fmt.Errorf("transport: loopback sender cannot receive")
}

func (s *loopSender) ReadBatch([]wire.Datagram) (int, error) {
	return 0, fmt.Errorf("transport: loopback sender cannot receive")
}

func (s *loopSender) SetReadDeadline(time.Time) error { return nil }

func (s *loopSender) Close() error {
	s.closed.Store(true)
	return nil
}

func (s *loopSender) LocalAddr() string { return "loopback(sender)" }

// loopConn is a receiving endpoint: a bounded queue behind a loss model
// — either a scalar core.Channel or, for ReceiverStepper endpoints, a
// batched channel.Stepper over raw splitmix64 state.
type loopConn struct {
	hub   *Loopback
	queue chan []byte

	chMu sync.Mutex // guards ch / (chState, chLost): stateful, shared across senders' deliveries
	ch   core.Channel

	useStepper bool
	stepper    channel.Stepper
	chState    uint64 // raw splitmix64 stream state
	chLost     bool   // Gilbert chain state (in the loss state?)

	closeOnce sync.Once
	closed    chan struct{}
	deadline  *deadline

	dropped atomic.Uint64 // queue-overflow drops (not channel erasures)
	erased  atomic.Uint64 // channel erasures
}

// deliver applies the loss model and enqueues the (shared, read-only)
// datagram, dropping it when the queue is full (UDP socket-buffer
// semantics). The caller guarantees the slice is never mutated after
// broadcast.
func (c *loopConn) deliver(datagram []byte) {
	select {
	case <-c.closed:
		return
	default:
	}
	if c.useStepper {
		c.chMu.Lock()
		lost := c.stepper.StepMask(&c.chState, &c.chLost, 1) != 0
		c.chMu.Unlock()
		if lost {
			c.erased.Add(1)
			return
		}
	} else if c.ch != nil {
		c.chMu.Lock()
		lost := c.ch.Lost()
		c.chMu.Unlock()
		if lost {
			c.erased.Add(1)
			return
		}
	}
	select {
	case c.queue <- datagram:
	default:
		c.dropped.Add(1)
	}
}

// deliverBatch is deliver for a whole batch: one lock acquisition, the
// loss model stepped in up to 64-wide masks. A stepper endpoint draws
// exactly the same splitmix64 sequence as n scalar delivers would —
// StepMask's chunking does not change the stream — so batched and
// scalar sends produce byte-identical loss patterns.
func (c *loopConn) deliverBatch(datagrams [][]byte) {
	select {
	case <-c.closed:
		return
	default:
	}
	c.chMu.Lock()
	defer c.chMu.Unlock()
	for i := 0; i < len(datagrams); i += 64 {
		n := len(datagrams) - i
		if n > 64 {
			n = 64
		}
		var mask uint64
		switch {
		case c.useStepper:
			mask = c.stepper.StepMask(&c.chState, &c.chLost, n)
		case c.ch != nil:
			for j := 0; j < n; j++ {
				if c.ch.Lost() {
					mask |= 1 << uint(j)
				}
			}
		}
		for j := 0; j < n; j++ {
			if mask&(1<<uint(j)) != 0 {
				c.erased.Add(1)
				continue
			}
			select {
			case c.queue <- datagrams[i+j]:
			default:
				c.dropped.Add(1)
			}
		}
	}
}

func (c *loopConn) Send([]byte) error {
	return fmt.Errorf("transport: loopback receiver cannot send")
}

func (c *loopConn) WriteBatch([]wire.Datagram) (int, error) {
	return 0, fmt.Errorf("transport: loopback receiver cannot send")
}

func (c *loopConn) Recv(buf []byte) (int, error) {
	for {
		// Drain anything already queued even after close/deadline
		// churn, so no accepted datagram is silently lost.
		select {
		case d := <-c.queue:
			return copy(buf, d), nil
		default:
		}
		expired, changed := c.deadline.channels()
		select {
		case d := <-c.queue:
			return copy(buf, d), nil
		case <-c.closed:
			return 0, fmt.Errorf("transport: loopback receiver: %w", ErrClosed)
		case <-expired:
			return 0, os.ErrDeadlineExceeded
		case <-changed:
			// SetReadDeadline raced with this Recv; re-arm on the
			// new deadline (net.Conn semantics: a deadline change
			// applies to pending reads too).
		}
	}
}

// ReadBatch implements BatchConn: it blocks for the first datagram with
// Recv's exact deadline/close semantics, then drains whatever else is
// already queued without blocking again.
func (c *loopConn) ReadBatch(bufs []wire.Datagram) (int, error) {
	if len(bufs) == 0 {
		return 0, nil
	}
	n, err := c.Recv(bufs[0])
	if err != nil {
		return 0, err
	}
	bufs[0] = bufs[0][:n]
	filled := 1
	for filled < len(bufs) {
		select {
		case d := <-c.queue:
			bufs[filled] = bufs[filled][:copy(bufs[filled], d)]
			filled++
		default:
			return filled, nil
		}
	}
	return filled, nil
}

func (c *loopConn) SetReadDeadline(t time.Time) error {
	c.deadline.set(t)
	return nil
}

func (c *loopConn) Close() error {
	c.hub.detach(c)
	c.closeLocked()
	return nil
}

func (c *loopConn) closeLocked() {
	c.closeOnce.Do(func() { close(c.closed) })
}

func (c *loopConn) LocalAddr() string { return "loopback(receiver)" }

// Dropped reports datagrams lost to queue overflow (receiver too slow),
// as opposed to channel erasures.
func (c *loopConn) Dropped() uint64 { return c.dropped.Load() }

// Erased reports datagrams removed by the loss model.
func (c *loopConn) Erased() uint64 { return c.erased.Load() }

func (l *Loopback) detach(c *loopConn) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, r := range l.receivers {
		if r == c {
			l.receivers = append(l.receivers[:i], l.receivers[i+1:]...)
			return
		}
	}
}

// deadline turns a settable time.Time into a channel that fires when the
// deadline passes, mirroring net.Conn read-deadline semantics for the
// in-memory backend. A second channel signals deadline *changes* so a
// Recv already blocked re-arms on the new value (net.Conn applies
// deadline updates to pending reads).
type deadline struct {
	mu      sync.Mutex
	timer   *time.Timer
	expired chan struct{}
	changed chan struct{}
}

func newDeadline() *deadline {
	return &deadline{changed: make(chan struct{})}
}

// set arms (or clears, for the zero time) the deadline.
func (d *deadline) set(t time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.timer != nil {
		d.timer.Stop()
		d.timer = nil
	}
	close(d.changed)
	d.changed = make(chan struct{})
	if t.IsZero() {
		d.expired = nil
		return
	}
	ch := make(chan struct{})
	d.expired = ch
	delay := time.Until(t)
	if delay <= 0 {
		close(ch)
		return
	}
	d.timer = time.AfterFunc(delay, func() { close(ch) })
}

// channels returns the expiry channel (nil = no deadline = blocks
// forever) and the change-notification channel valid for it.
func (d *deadline) channels() (expired, changed <-chan struct{}) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.expired, d.changed
}
