package transport

import (
	"context"
	"sync"
	"testing"
	"time"

	"fecperf/internal/wire"
)

// --- shared pacer: weighted fairness between busy shares ---

func TestSharedPacerWeightedFairness(t *testing.T) {
	const (
		rate = 50_000.0
		dur  = 300 * time.Millisecond
	)
	sp := NewSharedPacer(rate, 64)
	heavy := sp.AddShare(3)
	light := sp.AddShare(1)
	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()

	counts := make([]int, 2)
	var wg sync.WaitGroup
	for i, ps := range []*PacerShare{heavy, light} {
		wg.Add(1)
		go func(i int, ps *PacerShare) {
			defer wg.Done()
			for {
				if err := ps.Take(ctx, 16); err != nil {
					return
				}
				counts[i] += 16
			}
		}(i, ps)
	}
	wg.Wait()

	total := counts[0] + counts[1]
	ideal := rate * dur.Seconds()
	if f := float64(total); f < ideal*0.5 || f > ideal*1.6 {
		t.Errorf("aggregate admitted %d tokens over %v, want ~%.0f — global budget not enforced", total, dur, ideal)
	}
	// Weight 3 vs 1: the heavy share should see ~3x the light one's
	// tokens. Timers and scheduling blur it, so accept [2, 4.5].
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 2 || ratio > 4.5 {
		t.Errorf("heavy/light admission ratio = %.2f (%d vs %d), want ~3 for weights 3:1", ratio, counts[0], counts[1])
	}
}

// --- shared pacer: idle shares release their slice (work conservation) ---

func TestSharedPacerWorkConserving(t *testing.T) {
	const (
		rate = 50_000.0
		dur  = 250 * time.Millisecond
	)
	sp := NewSharedPacer(rate, 64)
	busy := sp.AddShare(1)
	for i := 0; i < 3; i++ {
		sp.AddShare(1) // registered but never taking — their slices idle
	}
	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()

	taken := 0
	for {
		if err := busy.Take(ctx, 16); err != nil {
			break
		}
		taken += 16
	}
	// The busy share's assured slice is rate/4; work conservation must
	// let it borrow the idle 3/4 and run near the full line rate.
	assured := rate / 4 * dur.Seconds()
	if float64(taken) < assured*2 {
		t.Errorf("sole busy share admitted %d tokens over %v — barely above its assured slice %.0f; idle share not redistributed", taken, dur, assured)
	}
	if u := busy.Utilization(); u < 1.5 {
		t.Errorf("Utilization() = %.2f after borrowing idle slices, want > 1.5", u)
	}
}

// --- shared pacer: over-burst debt bound and reset on resize ---

// TestSharedPacerDebtClearedOnResize pins the batch token-debt contract:
// a Take(n) with n above the share's burst runs the bucket negative by
// at most n - burst tokens (the convergence bound — the debt drains at
// the assured rate, so over-burst batches still average it), and a
// runtime share resize clears the debt instead of carrying it into the
// new regime.
func TestSharedPacerDebtClearedOnResize(t *testing.T) {
	const (
		rate  = 200_000.0
		burst = 32
	)
	ctx := context.Background()
	sp := NewSharedPacer(rate, burst)
	ps := sp.AddShare(1) // sole share: assured = full rate, burst = 32
	other := sp.AddShare(1)
	_ = other
	// Two equal shares, both full-burst (32) deep. The first over-burst
	// batch may ride the start-up pool (the borrow path creates no
	// debt); the second must go through the assured path — it waits for
	// a full bucket, debits the whole batch, and leaves debt ≤ 100 - 32.
	for i := 0; i < 2; i++ {
		if err := ps.Take(ctx, 100); err != nil {
			t.Fatal(err)
		}
	}
	debt := ps.Debt()
	if debt <= 0 {
		t.Fatalf("Take(100) with burst 32 left no debt — over-burst batches must run the bucket negative")
	}
	if debt > 100-32+1 {
		t.Errorf("debt after Take(100) = %.1f, above the n-burst bound %.0f", debt, 100.0-32)
	}

	// Shrinking the share's weight re-slices the pacer; debt must not
	// carry across the change (the cast would otherwise be throttled for
	// bursts sent under its old, larger entitlement).
	ps.SetWeight(0.5)
	if d := ps.Debt(); d != 0 {
		t.Errorf("Debt() = %.1f after SetWeight — resize must clear token debt", d)
	}

	// And the share is immediately admittable again within its new
	// slice's refill horizon (no stale debt throttling the next batch).
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	start := time.Now()
	if err := ps.Take(tctx, 8); err != nil {
		t.Fatalf("Take after resize: %v", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Errorf("Take(8) after debt-clearing resize blocked %v — stale debt survived", d)
	}
}

// --- shared pacer: membership changes re-slice and clear debt too ---

func TestSharedPacerMembershipClearsDebt(t *testing.T) {
	ctx := context.Background()
	sp := NewSharedPacer(100_000, 32)
	ps := sp.AddShare(1)
	// Two over-burst takes: the first may be a debt-free borrow from the
	// full global bucket, the second runs the assured bucket negative.
	for i := 0; i < 2; i++ {
		if err := ps.Take(ctx, 200); err != nil { // 200 > burst 32 → debt
			t.Fatal(err)
		}
	}
	if ps.Debt() <= 0 {
		t.Fatal("expected debt after over-burst take")
	}
	newcomer := sp.AddShare(1) // membership change re-slices everyone
	if d := ps.Debt(); d != 0 {
		t.Errorf("Debt() = %.1f after AddShare — membership change must clear debt", d)
	}
	newcomer.Close()
	if d := ps.Debt(); d != 0 {
		t.Errorf("Debt() = %.1f after Close of a sibling — membership change must clear debt", d)
	}
}

// --- shared pacer: closed shares reject takes; nil admits everything ---

func TestSharedPacerCloseAndNil(t *testing.T) {
	ctx := context.Background()
	sp := NewSharedPacer(1000, 0)
	ps := sp.AddShare(1)
	ps.Close()
	if err := ps.Take(ctx, 1); err == nil {
		t.Error("Take on a closed share succeeded, want error")
	}
	ps.Close() // double close is a no-op

	if NewSharedPacer(0, 0) != nil {
		t.Error("NewSharedPacer(0, _) != nil — rate 0 must mean unpaced")
	}
	var nilSP *SharedPacer
	nilShare := nilSP.AddShare(5)
	if nilShare != nil {
		t.Fatal("nil pacer returned a non-nil share")
	}
	if err := nilShare.Take(ctx, 1_000_000); err != nil {
		t.Errorf("nil share Take: %v, want immediate admit", err)
	}
	if d := nilShare.Debt(); d != 0 {
		t.Errorf("nil share Debt() = %v", d)
	}
	nilShare.SetWeight(3)
	nilShare.Close()
	if w := nilShare.Weight(); w != 0 {
		t.Errorf("nil share Weight() = %v", w)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := nilShare.Take(cctx, 1); err == nil {
		t.Error("nil share ignored a cancelled context")
	}
}

// --- shared pacer: drives a real sender via SenderConfig.Pacer ---

func TestSenderExternalPacer(t *testing.T) {
	const rate = 20_000.0
	hub := NewLoopback()
	defer hub.Close()
	conn := hub.Sender()

	obj := encodeTestObject(t, testFile(t, 64<<10, 9), 101, wire.CodeRSE, 1.5, 1024)
	defer obj.Close()

	sp := NewSharedPacer(rate, 64)
	ps := sp.AddShare(1)
	s := NewSender(conn, SenderConfig{
		Pacer:     ps,
		Rate:      1e12, // ignored when Pacer is set
		BatchSize: 16,
		Rounds:    0,
	})
	if err := s.Add(obj); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Run(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Run: %v, want deadline", err)
	}
	elapsed := time.Since(start).Seconds()
	st := s.Stats()
	got := float64(st.PacketsSent) / elapsed
	if got > rate*1.7 {
		t.Errorf("sender with external share ran at %.0f pkt/s, budget %.0f — SenderConfig.Pacer not honoured", got, rate)
	}
	if st.PacerWaitNS == 0 {
		t.Error("PacerWaitNS = 0 while blocked on an external pacer — timed wrapper not accounting")
	}
}
