package transport

import (
	"errors"
	"os"
	"testing"
	"time"

	"fecperf/internal/channel"
	"fecperf/internal/core"
)

// everyOther loses every second packet, deterministically.
type everyOther struct{ n int }

func (e *everyOther) Lost() bool {
	e.n++
	return e.n%2 == 0
}

func TestLoopbackDelivers(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	rx := hub.Receiver(nil, 8)
	tx := hub.Sender()

	want := []byte("hello broadcast")
	if err := tx.Send(want); err != nil {
		t.Fatalf("Send: %v", err)
	}
	buf := make([]byte, 64)
	n, err := rx.Recv(buf)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if string(buf[:n]) != string(want) {
		t.Fatalf("got %q, want %q", buf[:n], want)
	}
}

func TestLoopbackFanOutAndImpairment(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	clean := hub.Receiver(nil, 64)
	lossy := hub.Receiver(&everyOther{}, 64)
	tx := hub.Sender()

	const sent = 10
	for i := 0; i < sent; i++ {
		if err := tx.Send([]byte{byte(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	count := func(c Conn) int {
		c.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //nolint:errcheck
		buf := make([]byte, 4)
		n := 0
		for {
			if _, err := c.Recv(buf); err != nil {
				return n
			}
			n++
		}
	}
	if got := count(clean); got != sent {
		t.Errorf("clean receiver got %d datagrams, want %d", got, sent)
	}
	if got := count(lossy); got != sent/2 {
		t.Errorf("lossy receiver got %d datagrams, want %d", got, sent/2)
	}
	if e := lossy.(*loopConn).Erased(); e != sent/2 {
		t.Errorf("Erased() = %d, want %d", e, sent/2)
	}
}

func TestLoopbackQueueOverflowDrops(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	rx := hub.Receiver(nil, 2)
	tx := hub.Sender()
	for i := 0; i < 5; i++ {
		if err := tx.Send([]byte{byte(i)}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if d := rx.(*loopConn).Dropped(); d != 3 {
		t.Errorf("Dropped() = %d, want 3", d)
	}
}

func TestLoopbackGilbertMatchesStationaryLoss(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	g, err := newGilbert(0.2, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	rx := hub.Receiver(g, 100000)
	tx := hub.Sender()
	const sent = 20000
	for i := 0; i < sent; i++ {
		tx.Send([]byte{1}) //nolint:errcheck
	}
	erased := float64(rx.(*loopConn).Erased())
	got := erased / sent
	want := channel.GlobalLoss(0.2, 0.2) // 0.5
	if got < want-0.05 || got > want+0.05 {
		t.Errorf("observed loss %.3f, want ≈ %.3f", got, want)
	}
}

func TestLoopbackCloseUnblocksRecv(t *testing.T) {
	hub := NewLoopback()
	rx := hub.Receiver(nil, 1)
	errc := make(chan error, 1)
	go func() {
		_, err := rx.Recv(make([]byte, 16))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	hub.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Recv after close: %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestLoopbackReadDeadline(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	rx := hub.Receiver(nil, 1)
	rx.SetReadDeadline(time.Now().Add(20 * time.Millisecond)) //nolint:errcheck
	start := time.Now()
	_, err := rx.Recv(make([]byte, 16))
	if !errors.Is(err, os.ErrDeadlineExceeded) || !isTimeout(err) {
		t.Fatalf("Recv = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline took %v", elapsed)
	}
	// Clearing the deadline makes Recv block again until data arrives.
	rx.SetReadDeadline(time.Time{}) //nolint:errcheck
	go func() {
		time.Sleep(10 * time.Millisecond)
		hub.Sender().Send([]byte("late")) //nolint:errcheck
	}()
	n, err := rx.Recv(make([]byte, 16))
	if err != nil || n != 4 {
		t.Fatalf("Recv after clearing deadline: n=%d err=%v", n, err)
	}
}

// newGilbert builds a seeded Gilbert channel for loopback tests.
func newGilbert(p, q float64, seed int64) (core.Channel, error) {
	if err := channel.ValidateGilbert(p, q); err != nil {
		return nil, err
	}
	return channel.NewGilbert(p, q, newTestRand(seed)), nil
}

func TestLoopbackReceiverAfterCloseIsClosed(t *testing.T) {
	hub := NewLoopback()
	hub.Close()
	rx := hub.Receiver(nil, 4)
	if _, err := rx.Recv(make([]byte, 8)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv on post-Close receiver = %v, want ErrClosed", err)
	}
}
