//go:build race

package transport

// raceEnabled skips the alloc-ceiling tests under the race detector,
// whose instrumentation allocates on its own.
const raceEnabled = true
