package transport

import (
	"context"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"fecperf/internal/obs"
	"fecperf/internal/session"
)

// DefaultMaxPending is the Collector's default bound on completed
// chunks buffered out of order, waiting for an earlier chunk to decode.
const DefaultMaxPending = 64

// maxTrainChunks bounds the chunk index a collector accepts before the
// manifest announces the true train length: object IDs below the
// train's base wrap around uint32 to indexes near 2^32, and treating
// those as plausible chunks would let foreign objects on a shared conn
// poison the reorder buffer.
const maxTrainChunks = 1 << 30

// CollectorConfig tunes a streaming collect.
type CollectorConfig struct {
	// BaseObjectID selects the train: the manifest's object ID
	// (chunks ride at BaseObjectID+1+i). Must match the caster's.
	BaseObjectID uint32
	// MaxPending bounds completed chunks held out of order (default
	// DefaultMaxPending). A caster window is the natural scale: chunks
	// of one window complete in any order, so the bound should exceed
	// the sender's Window. Overflow is a hard error — on a one-pass
	// stream a chunk that outruns the bound will never be writable.
	MaxPending int
	// MaxInFlight, MaxObjectPackets, MTU and ReadBatch pass through to
	// the underlying ReceiverDaemon (see ReceiverConfig).
	MaxInFlight      int
	MaxObjectPackets int
	MTU              int
	ReadBatch        int
	// OnProgress, when set, is called — on the Run goroutine — after
	// every in-order chunk write and when the manifest arrives.
	OnProgress func(CollectProgress)
	// Metrics, when set, exposes the collect's counters on the registry
	// (collector_* series) and passes through to the underlying
	// ReceiverDaemon (receiver_* series).
	Metrics *obs.Registry
	// Tracer, when set, records write and verify lifecycle events, and
	// passes through to the daemon for kth_rx/decode events.
	Tracer *obs.Tracer
}

// CollectProgress describes a running collect.
type CollectProgress struct {
	// ChunksWritten and BytesWritten count the in-order prefix flushed
	// to the destination writer.
	ChunksWritten int
	BytesWritten  int64
	// ChunksTotal is the train length, or -1 until the manifest arrives
	// (the caster seals the train only after reading its last byte).
	ChunksTotal int
}

// Collector reassembles a Caster's chunk train from a Conn into an
// io.Writer: chunks decode in any order (bounded by MaxPending), are
// written strictly in order, and the trailing manifest closes the
// stream — total length and whole-stream CRC are verified before Run
// returns success. Memory stays bounded by the reordering window and
// the daemon's reassembly bounds, never by the stream size.
//
// Run drives the underlying ReceiverDaemon until the train completes,
// the writer or stream fails, or ctx is cancelled.
type Collector struct {
	daemon *ReceiverDaemon
	dst    io.Writer
	cfg    CollectorConfig
	finish context.CancelFunc

	mu       sync.Mutex
	manifest *session.Manifest
	pending  map[int][]byte
	next     int
	written  int64
	crc      uint32
	complete bool
	err      error

	chunksWritten obs.Counter
	bytesWritten  obs.Counter
	crcFailures   obs.Counter
}

// NewCollector returns a collector writing the reassembled stream to dst.
func NewCollector(conn Conn, dst io.Writer, cfg CollectorConfig) *Collector {
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	c := &Collector{
		dst:     dst,
		cfg:     cfg,
		pending: make(map[int][]byte),
	}
	c.daemon = NewReceiverDaemon(conn, ReceiverConfig{
		MaxInFlight:      cfg.MaxInFlight,
		MaxObjectPackets: cfg.MaxObjectPackets,
		MTU:              cfg.MTU,
		ReadBatch:        cfg.ReadBatch,
		// The collector consumes every object as it decodes; the
		// daemon's completed-bytes ring only needs to exist.
		MaxCompleted: 1,
		OnComplete:   c.onObject,
		Metrics:      cfg.Metrics,
		Tracer:       cfg.Tracer,
	})
	if r := cfg.Metrics; r != nil {
		r.CounterFunc("collector_chunks_written_total", "In-order chunks flushed to the destination.", nil, c.chunksWritten.Load)
		r.CounterFunc("collector_bytes_written_total", "In-order bytes flushed to the destination.", nil, c.bytesWritten.Load)
		r.CounterFunc("collector_crc_failures_total", "Trains failing end-to-end CRC or length verification.", nil, c.crcFailures.Load)
		r.GaugeFunc("collector_pending_chunks", "Decoded chunks buffered out of order.", nil, func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return int64(len(c.pending))
		})
	}
	return c
}

// Run collects until the train is complete (nil), the destination
// writer or the stream's integrity fails (the error), or ctx is
// cancelled (ctx.Err()).
func (c *Collector) Run(ctx context.Context) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	c.mu.Lock()
	c.finish = cancel
	c.mu.Unlock()

	err := c.daemon.Run(runCtx)

	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.err != nil:
		return c.err
	case c.complete:
		return nil
	default:
		return err
	}
}

// onObject routes one decoded object (manifest or chunk) on the daemon's
// Run goroutine. Progress callbacks fire after the lock is released, so
// they may call Progress/Manifest/Stats freely.
func (c *Collector) onObject(id uint32, data []byte) {
	var events []CollectProgress
	c.mu.Lock()
	c.onObjectLocked(id, data, &events)
	c.mu.Unlock()
	if c.cfg.OnProgress != nil {
		for _, ev := range events {
			c.cfg.OnProgress(ev)
		}
	}
}

func (c *Collector) onObjectLocked(id uint32, data []byte, events *[]CollectProgress) {
	if c.complete || c.err != nil {
		return
	}
	if id == c.cfg.BaseObjectID {
		m, err := session.DecodeManifest(data)
		if err != nil {
			c.failLocked(fmt.Errorf("transport: train manifest: %w", err))
			return
		}
		c.manifest = m
		// Anything buffered past the now-known train end was a foreign
		// object (another train or carousel sharing the conn) accepted
		// before the manifest told us the length; release it.
		for i := range c.pending {
			if uint32(i) >= m.ChunkCount {
				delete(c.pending, i)
			}
		}
		c.noteProgressLocked(events)
		c.checkCompleteLocked()
		return
	}
	idx := int(id - c.cfg.BaseObjectID - 1) // sequential train IDs (mod 2^32)
	if idx >= maxTrainChunks {
		// IDs below the base wrap mod 2^32 to indexes near 2^32; no
		// real train is billions of chunks, so this is foreign traffic
		// (e.g. a carousel on the same group), not a reorder.
		return
	}
	if c.manifest != nil && uint32(idx) >= c.manifest.ChunkCount {
		return // not part of this train
	}
	if idx < c.next {
		return // duplicate of an already-written chunk
	}
	if idx > c.next {
		if _, dup := c.pending[idx]; dup {
			return
		}
		if len(c.pending) >= c.cfg.MaxPending {
			c.failLocked(fmt.Errorf("transport: %d chunks completed out of order while chunk %d is missing (MaxPending %d)",
				len(c.pending), c.next, c.cfg.MaxPending))
			return
		}
		c.pending[idx] = data
		return
	}
	// idx == next: flush the contiguous prefix.
	for chunk, ok := data, true; ok; chunk, ok = c.pending[c.next] {
		delete(c.pending, c.next)
		if _, err := c.dst.Write(chunk); err != nil {
			c.failLocked(fmt.Errorf("transport: writing chunk %d: %w", c.next, err))
			return
		}
		c.crc = crc32.Update(c.crc, crc32.IEEETable, chunk)
		c.written += int64(len(chunk))
		c.chunksWritten.Inc()
		c.bytesWritten.Add(uint64(len(chunk)))
		if tr := c.cfg.Tracer; tr != nil {
			tr.Emit(obs.Event{
				Event:  obs.TraceWrite,
				Object: session.TrainChunkID(c.cfg.BaseObjectID, c.next),
				Chunk:  c.next,
				Bytes:  int64(len(chunk)),
			})
		}
		c.next++
		c.noteProgressLocked(events)
	}
	c.checkCompleteLocked()
}

// checkCompleteLocked seals the collect once the manifest and every
// chunk have been written: length and stream CRC must match.
func (c *Collector) checkCompleteLocked() {
	m := c.manifest
	if m == nil || c.next < int(m.ChunkCount) {
		return
	}
	if uint64(c.written) != m.TotalSize {
		c.crcFailures.Inc()
		c.traceVerify("length")
		c.failLocked(fmt.Errorf("transport: train wrote %d bytes, manifest says %d", c.written, m.TotalSize))
		return
	}
	if c.crc != m.StreamCRC {
		c.crcFailures.Inc()
		c.traceVerify("crc")
		c.failLocked(fmt.Errorf("transport: stream CRC mismatch (got %08x, manifest %08x)", c.crc, m.StreamCRC))
		return
	}
	c.complete = true
	c.traceVerify("")
	if c.finish != nil {
		c.finish()
	}
}

// traceVerify records the end-of-train verification outcome against the
// manifest's object ID; failure names what mismatched ("length", "crc").
func (c *Collector) traceVerify(failure string) {
	tr := c.cfg.Tracer
	if tr == nil {
		return
	}
	tr.Emit(obs.Event{
		Event:  obs.TraceVerify,
		Object: c.cfg.BaseObjectID,
		Chunk:  c.next,
		Bytes:  c.written,
		Err:    failure,
	})
}

func (c *Collector) failLocked(err error) {
	c.err = err
	if c.finish != nil {
		c.finish()
	}
}

// noteProgressLocked queues one progress snapshot for delivery after
// the lock is released.
func (c *Collector) noteProgressLocked(events *[]CollectProgress) {
	if c.cfg.OnProgress == nil {
		return
	}
	total := -1
	if c.manifest != nil {
		total = int(c.manifest.ChunkCount)
	}
	*events = append(*events, CollectProgress{
		ChunksWritten: c.next,
		BytesWritten:  c.written,
		ChunksTotal:   total,
	})
}

// Manifest returns the train manifest once it has decoded.
func (c *Collector) Manifest() (session.Manifest, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.manifest == nil {
		return session.Manifest{}, false
	}
	return *c.manifest, true
}

// Progress returns the current in-order progress snapshot.
func (c *Collector) Progress() CollectProgress {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := -1
	if c.manifest != nil {
		total = int(c.manifest.ChunkCount)
	}
	return CollectProgress{ChunksWritten: c.next, BytesWritten: c.written, ChunksTotal: total}
}

// CollectorStats is a point-in-time snapshot of collect counters: the
// collector's own reassembly progress plus the underlying daemon's
// packet counters.
type CollectorStats struct {
	// Receiver holds the underlying ReceiverDaemon's counters.
	Receiver Stats
	// ChunksWritten and BytesWritten count the in-order prefix flushed
	// to the destination writer.
	ChunksWritten uint64
	BytesWritten  uint64
	// ChunksPending counts decoded chunks buffered out of order.
	ChunksPending uint64
	// CRCFailures counts trains that failed end-to-end length or CRC
	// verification.
	CRCFailures uint64
}

// CollectStats returns a snapshot of the collector's counters.
func (c *Collector) CollectStats() CollectorStats {
	c.mu.Lock()
	pending := uint64(len(c.pending))
	c.mu.Unlock()
	return CollectorStats{
		Receiver:      c.daemon.Stats(),
		ChunksWritten: c.chunksWritten.Load(),
		BytesWritten:  c.bytesWritten.Load(),
		ChunksPending: pending,
		CRCFailures:   c.crcFailures.Load(),
	}
}

// Stats returns the underlying receiver daemon's counters — the
// compatibility view; CollectStats carries the collect-level counters.
func (c *Collector) Stats() Stats { return c.daemon.Stats() }
