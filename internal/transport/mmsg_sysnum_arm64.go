//go:build linux && arm64

package transport

// sendmmsg/recvmmsg syscall numbers for linux/arm64 (the asm-generic
// table all 64-bit non-x86 Linux ports share).
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
