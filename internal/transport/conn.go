// Package transport moves fecperf datagrams across real networks. It is
// the deployment layer the reproduced paper assumes (FLUTE/ALC content
// broadcasting): the session package produces self-describing datagrams,
// and this package carries them — over UDP/UDP-multicast sockets or over
// an in-memory loopback whose deliveries are filtered by any core.Channel,
// so every impairment the simulator supports (Gilbert bursts, Bernoulli
// loss, recorded traces) becomes a live network scenario.
//
// The package has three moving parts:
//
//   - Conn: a minimal datagram endpoint (Send / Recv / deadline / Close)
//     with two backends, UDP (udp.go) and the lossy loopback (loopback.go);
//   - Sender: a rate-limited carousel that streams encoded objects in
//     rounds, re-scheduling each round with one of the paper's
//     transmission models (sender.go);
//   - ReceiverDaemon: a demultiplexing reassembly loop with bounded
//     memory and atomic statistics (receiver.go).
package transport

import (
	"errors"
	"net"
	"time"

	"fecperf/internal/wire"
)

// ErrClosed is returned by Send and Recv after the endpoint is closed.
// UDP conns surface the identical net.ErrClosed, so errors.Is works
// uniformly across backends.
var ErrClosed = net.ErrClosed

// Conn is a datagram endpoint. Implementations must be safe for
// concurrent use: multiple goroutines may Send while another blocks in
// Recv, and Close must unblock pending Recv calls.
type Conn interface {
	// Send transmits one datagram. Like UDP, delivery is best-effort:
	// packets may be dropped (full receiver queues, lossy channels)
	// without an error. Send must not retain datagram after returning
	// (both backends copy), so callers may reuse the buffer — the
	// carousel sender encodes every packet through one scratch buffer.
	Send(datagram []byte) error
	// Recv blocks for the next datagram and copies it into buf,
	// returning its length. Datagrams longer than buf are truncated,
	// exactly like a UDP socket read. It returns ErrClosed once the
	// endpoint is closed and a net.Error with Timeout()==true when the
	// read deadline passes.
	Recv(buf []byte) (int, error)
	// SetReadDeadline bounds future (and pending) Recv calls. The zero
	// time means no deadline.
	SetReadDeadline(t time.Time) error
	// Close releases the endpoint and unblocks pending Recv calls.
	Close() error
	// LocalAddr describes the endpoint for logs and errors.
	LocalAddr() string
}

// BatchConn is implemented by Conns that can move several datagrams per
// kernel crossing. The UDP backend maps batches onto sendmmsg/recvmmsg
// (with UDP GSO segmentation where the kernel offers it) and the
// loopback backend applies its loss models in 64-wide batched steps, so
// a carousel sender flushing 64-packet batches pays one syscall — and
// one pacer debit, one loss-model lock — where the scalar path paid 64.
//
// Implementations keep the Conn concurrency contract: multiple
// goroutines may call WriteBatch/Send concurrently with a ReadBatch/Recv
// in flight, and batch calls interleave safely (each call's datagrams
// stay in order; datagrams of concurrent calls may interleave).
type BatchConn interface {
	Conn
	// WriteBatch transmits the batch in order and returns how many
	// datagrams were written. Like Send, delivery is best-effort and the
	// datagrams are not retained: callers may reuse the backing buffers
	// as soon as WriteBatch returns. A short count is always paired with
	// a non-nil error.
	WriteBatch(batch []wire.Datagram) (int, error)
	// ReadBatch blocks for at least one datagram, fills as many of the
	// caller's buffers as can be had without blocking again, re-slices
	// each filled bufs[i] to its datagram's length, and returns the
	// filled count. Datagrams longer than their buffer are truncated,
	// exactly like Recv. Errors follow Recv: ErrClosed after Close, a
	// timeout net.Error on read-deadline expiry. n > 0 implies err ==
	// nil.
	ReadBatch(bufs []wire.Datagram) (int, error)
}

// WriteBatch writes the whole batch to c: through one (or few) kernel
// crossings when c implements BatchConn, datagram by datagram otherwise.
// It is the portable write side of the batch contract — callers get the
// batched fast path when the Conn has one and identical behaviour when
// it does not.
func WriteBatch(c Conn, batch []wire.Datagram) (int, error) {
	if bc, ok := c.(BatchConn); ok {
		return bc.WriteBatch(batch)
	}
	return writeBatchScalar(c, batch)
}

// writeBatchScalar is the per-datagram fallback behind WriteBatch, and
// the portable implementation non-batching backends share.
func writeBatchScalar(c Conn, batch []wire.Datagram) (int, error) {
	for i, d := range batch {
		if err := c.Send(d); err != nil {
			return i, err
		}
	}
	return len(batch), nil
}

// ReadBatch fills bufs from c — one recvmmsg-style crossing when c
// implements BatchConn, a single Recv otherwise — and returns the
// filled count. See BatchConn.ReadBatch for the contract.
func ReadBatch(c Conn, bufs []wire.Datagram) (int, error) {
	if bc, ok := c.(BatchConn); ok {
		return bc.ReadBatch(bufs)
	}
	return readBatchScalar(c, bufs)
}

// readBatchScalar is the one-datagram fallback behind ReadBatch: it
// satisfies the batch contract (block, fill a prefix, re-slice) at
// batch size one.
func readBatchScalar(c Conn, bufs []wire.Datagram) (int, error) {
	if len(bufs) == 0 {
		return 0, nil
	}
	n, err := c.Recv(bufs[0])
	if err != nil {
		return 0, err
	}
	bufs[0] = bufs[0][:n]
	return 1, nil
}

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
