// Package transport moves fecperf datagrams across real networks. It is
// the deployment layer the reproduced paper assumes (FLUTE/ALC content
// broadcasting): the session package produces self-describing datagrams,
// and this package carries them — over UDP/UDP-multicast sockets or over
// an in-memory loopback whose deliveries are filtered by any core.Channel,
// so every impairment the simulator supports (Gilbert bursts, Bernoulli
// loss, recorded traces) becomes a live network scenario.
//
// The package has three moving parts:
//
//   - Conn: a minimal datagram endpoint (Send / Recv / deadline / Close)
//     with two backends, UDP (udp.go) and the lossy loopback (loopback.go);
//   - Sender: a rate-limited carousel that streams encoded objects in
//     rounds, re-scheduling each round with one of the paper's
//     transmission models (sender.go);
//   - ReceiverDaemon: a demultiplexing reassembly loop with bounded
//     memory and atomic statistics (receiver.go).
package transport

import (
	"errors"
	"net"
	"time"
)

// ErrClosed is returned by Send and Recv after the endpoint is closed.
// UDP conns surface the identical net.ErrClosed, so errors.Is works
// uniformly across backends.
var ErrClosed = net.ErrClosed

// Conn is a datagram endpoint. Implementations must be safe for
// concurrent use: multiple goroutines may Send while another blocks in
// Recv, and Close must unblock pending Recv calls.
type Conn interface {
	// Send transmits one datagram. Like UDP, delivery is best-effort:
	// packets may be dropped (full receiver queues, lossy channels)
	// without an error. Send must not retain datagram after returning
	// (both backends copy), so callers may reuse the buffer — the
	// carousel sender encodes every packet through one scratch buffer.
	Send(datagram []byte) error
	// Recv blocks for the next datagram and copies it into buf,
	// returning its length. Datagrams longer than buf are truncated,
	// exactly like a UDP socket read. It returns ErrClosed once the
	// endpoint is closed and a net.Error with Timeout()==true when the
	// read deadline passes.
	Recv(buf []byte) (int, error)
	// SetReadDeadline bounds future (and pending) Recv calls. The zero
	// time means no deadline.
	SetReadDeadline(t time.Time) error
	// Close releases the endpoint and unblocks pending Recv calls.
	Close() error
	// LocalAddr describes the endpoint for logs and errors.
	LocalAddr() string
}

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
