package transport

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"

	"fecperf/internal/obs"
	"fecperf/internal/session"
	"fecperf/internal/wire"
)

// ReceiverConfig tunes the daemon.
type ReceiverConfig struct {
	// MaxInFlight bounds how many partially-reassembled objects are held
	// at once (default 64). Beyond it the least-recently-active object
	// is evicted — its datagrams keep arriving on the carousel, so it
	// simply starts over if it becomes active again.
	MaxInFlight int
	// MaxCompleted bounds how many decoded objects are retained for
	// Object/WaitObject (default 16). Evicted objects remain remembered
	// as completed (their late datagrams are discarded cheaply) but
	// their bytes are released.
	MaxCompleted int
	// MaxCompletedIDs bounds the set of remembered completed object IDs
	// (default 65536, ~4 bytes each). Past it the oldest completions are
	// forgotten entirely; should their datagrams still be broadcast,
	// those objects decode (and call OnComplete) again.
	MaxCompletedIDs int
	// MaxObjectPackets bounds the N (total packet count) a datagram's
	// OTI may announce (default 262144, comfortably above the paper's
	// largest blocks). The header CRC only proves integrity, not
	// honesty: without this cap a single forged datagram could make the
	// decoder constructor allocate for a billion-packet object.
	MaxObjectPackets int
	// MTU sizes the read buffer (default 2048; must exceed header +
	// symbol size or datagrams are truncated and discarded).
	MTU int
	// ReadBatch is how many datagrams the ingest loop asks the conn for
	// per read crossing (default 16, clamped to 64). On batch-capable
	// conns a burst drains recvmmsg-style — one kernel crossing for the
	// whole batch; on others each crossing yields one datagram, the
	// scalar behaviour. 1 forces scalar reads.
	ReadBatch int
	// OnComplete, when set, is called — outside the daemon's locks, on
	// the Run goroutine — each time an object decodes.
	OnComplete func(id uint32, data []byte)
	// Metrics, when set, exposes the daemon's counters on the registry
	// (receiver_* series, including a decode-latency histogram and an
	// in-flight-objects gauge).
	Metrics *obs.Registry
	// Tracer, when set, records kth_rx and decode lifecycle events for
	// sampled objects.
	Tracer *obs.Tracer
}

// Discard reasons distinguish why datagrams were not ingested; Stats
// reports a counter per reason.
const (
	discardBad          = iota // malformed: bad magic/version/checksum/geometry
	discardLate                // object already completed
	discardInconsistent        // OTI disagrees with the object's reassembly state
	discardTruncated           // datagram larger than MTU (read was cut short)
	discardReasons
)

// Stats is a point-in-time snapshot of receiver counters.
type Stats struct {
	// PacketsSeen counts every datagram read off the Conn.
	PacketsSeen uint64
	// BytesSeen counts the datagram bytes read off the Conn.
	BytesSeen uint64
	// PacketsIngested counts datagrams accepted into reassembly.
	PacketsIngested uint64
	// PacketsBad counts malformed datagrams (wire.Decode failures).
	PacketsBad uint64
	// PacketsLate counts datagrams for already-completed objects — on a
	// carousel this is the steady state after decoding.
	PacketsLate uint64
	// PacketsInconsistent counts datagrams whose OTI contradicted an
	// in-flight object's state.
	PacketsInconsistent uint64
	// PacketsTruncated counts datagrams larger than MTU, whose reads
	// were cut short by the buffer — the telltale of a sender using a
	// bigger symbol size than the receiver's MTU allows.
	PacketsTruncated uint64
	// PacketsDuplicate counts datagrams whose packet ID was already held
	// for an in-flight object — expected on a carousel, where every
	// round replays the same IDs.
	PacketsDuplicate uint64
	// ObjectsStarted counts objects that opened reassembly state.
	ObjectsStarted uint64
	// ObjectsDecoded counts fully reconstructed objects.
	ObjectsDecoded uint64
	// ObjectsEvicted counts in-flight objects dropped by the
	// MaxInFlight LRU bound.
	ObjectsEvicted uint64
}

// ReceiverDaemon drains a Conn, demultiplexes datagrams into
// per-ObjectID reassembly state and surfaces decoded objects. Memory is
// bounded on both sides of completion: partial objects by an LRU of
// MaxInFlight, decoded bytes by an LRU of MaxCompleted.
//
// Run is the single ingest loop; Stats, Object and WaitObject are safe
// from any goroutine, concurrently with Run.
type ReceiverDaemon struct {
	conn Conn
	cfg  ReceiverConfig

	mu       sync.Mutex
	rx       *session.Receiver
	lru      *list.List               // of uint32 (object IDs), front = most recent
	lruIndex map[uint32]*list.Element // in-flight objects only
	// Completions are remembered in FIFO order at two depths: byteRing
	// bounds how many decoded objects keep their bytes (done), idRing
	// bounds how many are remembered at all (doneIDs). An ID re-enters
	// the rings only after idRing has forgotten it, so each holds any
	// ID at most once.
	done     map[uint32][]byte   // decoded objects still holding bytes
	doneIDs  map[uint32]struct{} // every remembered decoded ID, bytes or not
	byteRing ring
	idRing   ring
	waiters  map[uint32][]chan []byte

	packetsSeen      obs.Counter
	bytesSeen        obs.Counter
	packetsIngested  obs.Counter
	packetsDuplicate obs.Counter
	discards         [discardReasons]obs.Counter
	objectsStarted   obs.Counter
	objectsDecoded   obs.Counter
	objectsEvicted   obs.Counter
	readBatches      obs.Counter
	decodeHist       *obs.Histogram // nil unless Metrics is set
	readBatchSizes   *obs.Histogram // nil unless Metrics is set
}

// NewReceiverDaemon returns a daemon reading from conn.
func NewReceiverDaemon(conn Conn, cfg ReceiverConfig) *ReceiverDaemon {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.MaxCompleted <= 0 {
		cfg.MaxCompleted = 16
	}
	if cfg.MTU <= 0 {
		cfg.MTU = 2048
	}
	if cfg.MaxObjectPackets <= 0 {
		cfg.MaxObjectPackets = 262144
	}
	if cfg.MaxCompletedIDs <= 0 {
		cfg.MaxCompletedIDs = 65536
	}
	if cfg.MaxCompletedIDs < cfg.MaxCompleted {
		cfg.MaxCompletedIDs = cfg.MaxCompleted
	}
	if cfg.ReadBatch <= 0 {
		cfg.ReadBatch = 16
	}
	if cfg.ReadBatch > maxSendBatch {
		cfg.ReadBatch = maxSendBatch
	}
	d := &ReceiverDaemon{
		conn:     conn,
		cfg:      cfg,
		rx:       session.NewReceiver(),
		lru:      list.New(),
		lruIndex: make(map[uint32]*list.Element),
		done:     make(map[uint32][]byte),
		doneIDs:  make(map[uint32]struct{}),
		byteRing: ring{cap: cfg.MaxCompleted},
		idRing:   ring{cap: cfg.MaxCompletedIDs},
		waiters:  make(map[uint32][]chan []byte),
	}
	if r := cfg.Metrics; r != nil {
		r.CounterFunc("receiver_packets_total", "Datagrams read off the conn.", nil, d.packetsSeen.Load)
		r.CounterFunc("receiver_bytes_total", "Datagram bytes read off the conn.", nil, d.bytesSeen.Load)
		r.CounterFunc("receiver_packets_ingested_total", "Datagrams accepted into reassembly.", nil, d.packetsIngested.Load)
		r.CounterFunc("receiver_packets_duplicate_total", "Datagrams repeating an already-held packet ID.", nil, d.packetsDuplicate.Load)
		for reason, name := range map[int]string{
			discardBad:          "bad",
			discardLate:         "late",
			discardInconsistent: "inconsistent",
			discardTruncated:    "truncated",
		} {
			r.CounterFunc("receiver_packets_dropped_total", "Datagrams not ingested, by reason.",
				obs.L("reason", name), d.discards[reason].Load)
		}
		r.CounterFunc("receiver_objects_started_total", "Objects that opened reassembly state.", nil, d.objectsStarted.Load)
		r.CounterFunc("receiver_objects_decoded_total", "Fully reconstructed objects.", nil, d.objectsDecoded.Load)
		r.CounterFunc("receiver_objects_evicted_total", "In-flight objects dropped by the LRU bound.", nil, d.objectsEvicted.Load)
		r.GaugeFunc("receiver_inflight_objects", "Objects mid-reassembly.", nil, func() int64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return int64(len(d.lruIndex))
		})
		d.decodeHist = r.Histogram("receiver_decode_seconds", "First datagram of an object to its decode.",
			obs.DurationBuckets(), obs.SecondsUnit, nil)
		r.CounterFunc("receiver_read_batches_total", "Read crossings the ingest loop issued.", nil, d.readBatches.Load)
		d.readBatchSizes = r.Histogram("receiver_read_batch_size", "Datagrams per read crossing.", obs.ExpBuckets(1, 2, 7), 0, nil)
	}
	return d
}

// ring is a fixed-capacity FIFO of object IDs: push returns the evicted
// ID (and true) once the ring is full.
type ring struct {
	cap  int
	ids  []uint32
	next int
}

func (r *ring) push(id uint32) (evicted uint32, full bool) {
	if len(r.ids) < r.cap {
		r.ids = append(r.ids, id)
		return 0, false
	}
	evicted = r.ids[r.next]
	r.ids[r.next] = id
	r.next = (r.next + 1) % len(r.ids)
	return evicted, true
}

// Run reads datagrams until ctx is cancelled or the Conn is closed. It
// returns nil on a clean Conn close, ctx.Err() on cancellation, and the
// read error otherwise.
func (d *ReceiverDaemon) Run(ctx context.Context) error {
	// Cancellation must unblock a pending Recv: arm an immediate read
	// deadline when ctx fires and classify the resulting timeout below.
	stop := context.AfterFunc(ctx, func() {
		d.conn.SetReadDeadline(time.Unix(1, 0)) //nolint:errcheck
	})
	defer stop()
	// One spare byte past MTU: a read that fills it proves the datagram
	// was larger than MTU and therefore cut short (UDP truncation is
	// otherwise silent), which would fail the CRC and masquerade as
	// corruption instead of pointing at the MTU mismatch. The ingest
	// loop reads ReadBatch datagrams per crossing, each into its own
	// slot of one backing allocation; the slots are re-armed to full
	// width before every crossing (ReadBatch re-slices what it fills).
	slot := d.cfg.MTU + 1
	backing := make([]byte, d.cfg.ReadBatch*slot)
	bufs := make([]wire.Datagram, d.cfg.ReadBatch)
	for {
		for i := range bufs {
			bufs[i] = backing[i*slot : (i+1)*slot : (i+1)*slot]
		}
		filled, err := ReadBatch(d.conn, bufs)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if isTimeout(err) {
				continue // stale deadline from a previous arm; keep serving
			}
			if errors.Is(err, ErrClosed) {
				return nil
			}
			return err
		}
		d.readBatches.Inc()
		d.readBatchSizes.Observe(int64(filled))
		for i := 0; i < filled; i++ {
			b := bufs[i]
			if len(b) > d.cfg.MTU {
				d.packetsSeen.Add(1)
				d.bytesSeen.Add(uint64(len(b)))
				d.discards[discardTruncated].Add(1)
				continue
			}
			d.handle(b)
		}
	}
}

// handle ingests one datagram. The payload aliases the read buffer; the
// session receiver's payload decoder copies what it retains into pooled
// symbol buffers (the receive path's single copy), so the buffer is
// reusable on return.
func (d *ReceiverDaemon) handle(datagram []byte) {
	d.packetsSeen.Add(1)
	d.bytesSeen.Add(uint64(len(datagram)))
	p, err := wire.Decode(datagram)
	if err != nil {
		d.discards[discardBad].Add(1)
		return
	}
	// The CRC proves the header arrived intact, not that its OTI is
	// honest: cap the announced object size BEFORE the decoder
	// constructor allocates for it.
	if int64(p.N) > int64(d.cfg.MaxObjectPackets) {
		d.discards[discardBad].Add(1)
		return
	}

	d.mu.Lock()
	if _, completed := d.doneIDs[p.ObjectID]; completed {
		d.mu.Unlock()
		d.discards[discardLate].Add(1)
		return
	}
	_, inFlight := d.lruIndex[p.ObjectID]
	res, err := d.rx.IngestPacketEx(p)
	id, complete, data := res.ObjectID, res.Complete, res.Data
	if err != nil {
		if !inFlight {
			// The packet may have opened session state before failing;
			// drop it so nothing lives outside the LRU bound.
			d.rx.Forget(p.ObjectID)
		}
		d.mu.Unlock()
		if inFlight {
			d.discards[discardInconsistent].Add(1)
		} else {
			// Failed to even open state (bad OTI combination).
			d.discards[discardBad].Add(1)
		}
		return
	}
	if res.Duplicate {
		d.packetsDuplicate.Inc()
		if inFlight {
			d.lru.MoveToFront(d.lruIndex[id])
		}
		d.mu.Unlock()
		return
	}
	d.packetsIngested.Inc()
	if tr := d.cfg.Tracer; tr != nil && res.Packets == res.K && tr.Sampled(id) {
		tr.Emit(obs.Event{Event: obs.TraceKthRx, Object: id, K: res.K, Packets: res.Packets})
	}
	if !inFlight && !complete {
		d.objectsStarted.Add(1)
		d.lruIndex[id] = d.lru.PushFront(id)
		// Evict only AFTER a new object successfully opened state, so
		// unopenable datagrams cannot churn live reassembly progress.
		if len(d.lruIndex) > d.cfg.MaxInFlight {
			d.evictOldestLocked()
		}
		d.mu.Unlock()
		return
	}
	if !complete {
		d.lru.MoveToFront(d.lruIndex[id])
		d.mu.Unlock()
		return
	}
	// Object decoded: retire its in-flight entry, release the session
	// receiver's copy and retain ours under the completed LRU bound.
	if !inFlight {
		d.objectsStarted.Add(1) // single-datagram object
	} else {
		d.lru.Remove(d.lruIndex[id])
		delete(d.lruIndex, id)
	}
	d.rx.Forget(id)
	d.rememberCompletedLocked(id, data)
	waiters := d.waiters[id]
	delete(d.waiters, id)
	d.mu.Unlock()

	d.objectsDecoded.Add(1)
	d.decodeHist.Observe(res.DecodeNS)
	if tr := d.cfg.Tracer; tr != nil {
		tr.Emit(obs.Event{
			Event:   obs.TraceDecode,
			Object:  id,
			K:       res.K,
			Packets: res.Packets,
			Bytes:   int64(len(data)),
			NS:      res.DecodeNS,
		})
	}
	for _, w := range waiters {
		w <- data
	}
	if d.cfg.OnComplete != nil {
		d.cfg.OnComplete(id, data)
	}
}

// rememberCompletedLocked records a decoded object: bytes under the
// MaxCompleted FIFO, the bare ID under the MaxCompletedIDs FIFO. Both
// rings see completions in the same order and byteRing is never deeper,
// so an ID's bytes are always released no later than the ID itself.
func (d *ReceiverDaemon) rememberCompletedLocked(id uint32, data []byte) {
	d.done[id] = data
	if old, full := d.byteRing.push(id); full {
		delete(d.done, old)
	}
	d.doneIDs[id] = struct{}{}
	if old, full := d.idRing.push(id); full {
		delete(d.doneIDs, old)
		delete(d.done, old) // no-op unless the rings are equally deep
	}
}

// evictOldestLocked drops the least-recently-active in-flight object.
func (d *ReceiverDaemon) evictOldestLocked() {
	back := d.lru.Back()
	if back == nil {
		return
	}
	id := d.lru.Remove(back).(uint32)
	delete(d.lruIndex, id)
	d.rx.Forget(id)
	d.objectsEvicted.Add(1)
}

// Object returns a decoded object's bytes, if still retained.
func (d *ReceiverDaemon) Object(id uint32) ([]byte, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	data, ok := d.done[id]
	return data, ok
}

// Completed reports whether the object has been decoded, even if its
// bytes have since been released by the MaxCompleted bound.
func (d *ReceiverDaemon) Completed(id uint32) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.doneIDs[id]
	return ok
}

// WaitObject blocks until the object decodes or ctx is done. It returns
// immediately when the object already decoded and its bytes are still
// retained; an object decoded and already released returns an error.
func (d *ReceiverDaemon) WaitObject(ctx context.Context, id uint32) ([]byte, error) {
	d.mu.Lock()
	if data, ok := d.done[id]; ok {
		d.mu.Unlock()
		return data, nil
	}
	if _, ok := d.doneIDs[id]; ok {
		d.mu.Unlock()
		return nil, errors.New("transport: object decoded but no longer retained")
	}
	ch := make(chan []byte, 1)
	d.waiters[id] = append(d.waiters[id], ch)
	d.mu.Unlock()
	select {
	case data := <-ch:
		return data, nil
	case <-ctx.Done():
		d.dropWaiter(id, ch)
		return nil, ctx.Err()
	}
}

func (d *ReceiverDaemon) dropWaiter(id uint32, ch chan []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ws := d.waiters[id]
	for i, w := range ws {
		if w == ch {
			ws = append(ws[:i], ws[i+1:]...)
			if len(ws) == 0 {
				delete(d.waiters, id) // don't leak entries for IDs that never decode
			} else {
				d.waiters[id] = ws
			}
			return
		}
	}
}

// Stats returns a snapshot of the daemon's counters.
func (d *ReceiverDaemon) Stats() Stats {
	return Stats{
		PacketsSeen:         d.packetsSeen.Load(),
		BytesSeen:           d.bytesSeen.Load(),
		PacketsIngested:     d.packetsIngested.Load(),
		PacketsBad:          d.discards[discardBad].Load(),
		PacketsLate:         d.discards[discardLate].Load(),
		PacketsInconsistent: d.discards[discardInconsistent].Load(),
		PacketsTruncated:    d.discards[discardTruncated].Load(),
		PacketsDuplicate:    d.packetsDuplicate.Load(),
		ObjectsStarted:      d.objectsStarted.Load(),
		ObjectsDecoded:      d.objectsDecoded.Load(),
		ObjectsEvicted:      d.objectsEvicted.Load(),
	}
}
