package transport

import (
	"math/rand"
	"testing"

	"fecperf/internal/session"
	"fecperf/internal/wire"
)

// newTestRand centralises RNG construction for the package's tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// testFile returns deterministic pseudo-random content.
func testFile(t testing.TB, size int, seed int64) []byte {
	t.Helper()
	data := make([]byte, size)
	newTestRand(seed).Read(data)
	return data
}

// encodeTestObject FEC-encodes data with sensible broadcast defaults.
func encodeTestObject(t testing.TB, data []byte, id uint32, family wire.CodeFamily, ratio float64, payload int) *session.Object {
	t.Helper()
	obj, err := session.EncodeObject(data, session.SenderConfig{
		ObjectID:    id,
		Family:      family,
		Ratio:       ratio,
		PayloadSize: payload,
		Seed:        int64(id) + 1,
	})
	if err != nil {
		t.Fatalf("EncodeObject(%d): %v", id, err)
	}
	return obj
}
