//go:build linux && amd64

package transport

// sendmmsg/recvmmsg syscall numbers for linux/amd64. The frozen stdlib
// syscall package predates both calls, so the numbers live here (they
// are ABI-stable per architecture).
const (
	sysSENDMMSG = 307
	sysRECVMMSG = 299
)
