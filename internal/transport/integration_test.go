package transport

import (
	"bytes"
	"context"
	"testing"
	"time"

	"fecperf/internal/channel"
	"fecperf/internal/sched"
	"fecperf/internal/wire"
)

// TestBroadcastGilbertMidCarouselJoin is the acceptance scenario for the
// transport subsystem: a 128 KiB file is FEC-encoded with LDGM-Staircase,
// scheduled with Tx_model_4, and carouselled over the in-memory backend
// behind a Gilbert(p=0.01, q=0.5) loss process. The receiver joins only
// after a third of the first round is already gone and must still
// reconstruct the file byte-identically — the paper's FLUTE/ALC late-join
// property carried over a live (if in-process) network.
func TestBroadcastGilbertMidCarouselJoin(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()

	file := testFile(t, 128<<10, 99)
	obj := encodeTestObject(t, file, 7, wire.CodeLDGMStaircase, 2.5, 1024)

	// The receiver's conn is attached only mid-carousel: datagrams
	// broadcast before that are lost to it, exactly like a late join.
	joinAfter := obj.N() / 3
	sent := 0
	joined := make(chan struct{})
	s := NewSender(&joinTap{hub: hub, sender: hub.Sender(), after: joinAfter, sent: &sent, joined: joined},
		SenderConfig{Scheduler: sched.TxModel4{}, Seed: 12, Rate: 0})
	if err := s.Add(obj); err != nil {
		t.Fatal(err)
	}

	senderCtx, stopSender := context.WithCancel(context.Background())
	defer stopSender()
	senderDone := make(chan error, 1)
	go func() { senderDone <- s.Run(senderCtx) }() // Rounds=0: infinite carousel

	<-joined
	g := channel.NewGilbert(0.01, 0.5, newTestRand(77))
	d := NewReceiverDaemon(hub.Receiver(g, 1<<16), ReceiverConfig{})
	stop := runDaemon(t, d)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	data, err := d.WaitObject(ctx, 7)
	if err != nil {
		t.Fatalf("late-joining receiver never completed: %v (stats %+v)", err, d.Stats())
	}
	if !bytes.Equal(data, file) {
		t.Fatal("reconstructed file differs from the original")
	}
	stopSender()
	if err := <-senderDone; err != context.Canceled {
		t.Fatalf("sender Run = %v, want context.Canceled", err)
	}

	st := d.Stats()
	if st.ObjectsDecoded != 1 {
		t.Errorf("ObjectsDecoded = %d, want 1", st.ObjectsDecoded)
	}
	t.Logf("late join after %d datagrams; receiver saw %d, ingested %d (inefficiency %.3f)",
		joinAfter, st.PacketsSeen, st.PacketsIngested, float64(st.PacketsIngested)/float64(obj.K()))
}

// joinTap wraps the loopback sender and signals once `after` datagrams
// have been broadcast, so the test can attach a receiver mid-carousel.
type joinTap struct {
	hub    *Loopback
	sender Conn
	after  int
	sent   *int
	joined chan struct{}
}

func (j *joinTap) Send(d []byte) error {
	err := j.sender.Send(d)
	*j.sent++
	if *j.sent == j.after {
		close(j.joined)
	}
	if *j.sent%256 == 0 {
		// Yield so the (possibly single-CPU) receiver goroutine drains
		// its queue; a real sender would be paced by Rate instead.
		time.Sleep(time.Millisecond)
	}
	return err
}

func (j *joinTap) Recv(buf []byte) (int, error)      { return j.sender.Recv(buf) }
func (j *joinTap) SetReadDeadline(t time.Time) error { return j.sender.SetReadDeadline(t) }
func (j *joinTap) Close() error                      { return j.sender.Close() }
func (j *joinTap) LocalAddr() string                 { return j.sender.LocalAddr() }
