package transport

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"fecperf/internal/channel"
	"fecperf/internal/core"
	"fecperf/internal/wire"
)

// --- batch Conn contract over real UDP sockets ---

func udpPair(t *testing.T) (rx, tx Conn) {
	t.Helper()
	rx, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	t.Cleanup(func() { rx.Close() })
	tx, err = DialUDP(rx.LocalAddr())
	if err != nil {
		t.Fatalf("DialUDP: %v", err)
	}
	t.Cleanup(func() { tx.Close() })
	return rx, tx
}

// TestUDPBatchRoundTrip pushes a mixed-size batch (GSO can only coalesce
// equal-size runs, so this exercises run grouping, singles and the
// plain-sendmmsg path together) through a socket pair and checks every
// datagram arrives intact and in order.
func TestUDPBatchRoundTrip(t *testing.T) {
	rx, tx := udpPair(t)
	var batch []wire.Datagram
	for i := 0; i < 150; i++ {
		size := 300 + 200*(i%3) // runs of up to 3 equal-size datagrams
		d := bytes.Repeat([]byte{byte(i)}, size)
		d[0] = byte(i >> 8)
		batch = append(batch, d)
	}
	n, err := WriteBatch(tx, batch)
	if n != len(batch) || err != nil {
		t.Fatalf("WriteBatch = %d, %v; want %d, nil", n, err, len(batch))
	}
	rx.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	got := 0
	for got < len(batch) {
		bufs := make([]wire.Datagram, 32)
		for i := range bufs {
			bufs[i] = make([]byte, 2048)
		}
		m, err := ReadBatch(rx, bufs)
		if err != nil {
			t.Fatalf("ReadBatch after %d datagrams: %v", got, err)
		}
		if m == 0 {
			t.Fatal("ReadBatch returned 0 with nil error")
		}
		for i := 0; i < m; i++ {
			want := batch[got+i]
			if !bytes.Equal(bufs[i], want) {
				t.Fatalf("datagram %d: got %d bytes (first %x), want %d bytes",
					got+i, len(bufs[i]), bufs[i][:2], len(want))
			}
		}
		got += m
	}
}

// TestUDPBatchEqualSizeGSO sends more equal-size datagrams than one GSO
// super-datagram may carry, forcing the writer to split runs across
// headers and crossings, and verifies the kernel re-segments them into
// the original datagram boundaries.
func TestUDPBatchEqualSizeGSO(t *testing.T) {
	rx, tx := udpPair(t)
	const count, size = 300, 512
	batch := make([]wire.Datagram, count)
	for i := range batch {
		d := bytes.Repeat([]byte{0xA5}, size)
		d[0], d[1] = byte(i>>8), byte(i)
		batch[i] = d
	}
	if n, err := WriteBatch(tx, batch); n != count || err != nil {
		t.Fatalf("WriteBatch = %d, %v; want %d, nil", n, err, count)
	}
	rx.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	for got := 0; got < count; {
		bufs := make([]wire.Datagram, 64)
		for i := range bufs {
			bufs[i] = make([]byte, 2048)
		}
		m, err := ReadBatch(rx, bufs)
		if err != nil {
			t.Fatalf("ReadBatch after %d datagrams: %v", got, err)
		}
		for i := 0; i < m; i++ {
			if len(bufs[i]) != size {
				t.Fatalf("datagram %d: %d bytes, want %d (bad GSO segmentation?)", got+i, len(bufs[i]), size)
			}
			if idx := int(bufs[i][0])<<8 | int(bufs[i][1]); idx != got+i {
				t.Fatalf("datagram %d carries index %d: order not preserved", got+i, idx)
			}
		}
		got += m
	}
}

// TestUDPReadBatchTruncation checks ReadBatch truncates oversized
// datagrams to the caller's buffer exactly like Recv does.
func TestUDPReadBatchTruncation(t *testing.T) {
	rx, tx := udpPair(t)
	if err := tx.Send(bytes.Repeat([]byte{7}, 1000)); err != nil {
		t.Fatal(err)
	}
	rx.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	bufs := []wire.Datagram{make([]byte, 100)}
	n, err := ReadBatch(rx, bufs)
	if n != 1 || err != nil {
		t.Fatalf("ReadBatch = %d, %v", n, err)
	}
	if len(bufs[0]) != 100 {
		t.Fatalf("truncated read re-sliced to %d, want 100", len(bufs[0]))
	}
}

// TestUDPBatchDeadline checks ReadBatch honours the read deadline with a
// timeout net.Error, like Recv.
func TestUDPBatchDeadline(t *testing.T) {
	rx, _ := udpPair(t)
	rx.SetReadDeadline(time.Now().Add(20 * time.Millisecond)) //nolint:errcheck
	bufs := []wire.Datagram{make([]byte, 64)}
	n, err := ReadBatch(rx, bufs)
	if n != 0 || !isTimeout(err) {
		t.Fatalf("ReadBatch past deadline = %d, %v; want 0 and a timeout", n, err)
	}
}

// TestUDPWriteBatchICMPSwallowed writes batches at a port nothing
// listens on: the kernel's async ICMP feedback (connection refused)
// must be swallowed exactly as the scalar Send swallows it — a
// broadcast is feedback-free.
func TestUDPWriteBatchICMPSwallowed(t *testing.T) {
	probe, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.LocalAddr()
	probe.Close() // the port is now (very likely) dead
	tx, err := DialUDP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	batch := make([]wire.Datagram, 20)
	for i := range batch {
		batch[i] = bytes.Repeat([]byte{1}, 128)
	}
	// The first write provokes the ICMP error; later ones surface it.
	for round := 0; round < 5; round++ {
		if n, err := WriteBatch(tx, batch); err != nil || n != len(batch) {
			t.Fatalf("round %d: WriteBatch = %d, %v; want %d, nil", round, n, err, len(batch))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// --- portable helpers against a batch-less Conn ---

// scalarOnlyConn is a Conn with no batch methods: the package helpers
// must fall back to per-datagram Sends and single Recvs.
type scalarOnlyConn struct {
	sent [][]byte
	rx   [][]byte
}

func (c *scalarOnlyConn) Send(d []byte) error {
	c.sent = append(c.sent, append([]byte(nil), d...))
	return nil
}

func (c *scalarOnlyConn) Recv(buf []byte) (int, error) {
	if len(c.rx) == 0 {
		return 0, ErrClosed
	}
	d := c.rx[0]
	c.rx = c.rx[1:]
	return copy(buf, d), nil
}

func (c *scalarOnlyConn) SetReadDeadline(time.Time) error { return nil }
func (c *scalarOnlyConn) Close() error                    { return nil }
func (c *scalarOnlyConn) LocalAddr() string               { return "scalar-only" }

func TestBatchHelpersScalarFallback(t *testing.T) {
	c := &scalarOnlyConn{rx: [][]byte{{1, 2, 3}, {4, 5}}}
	batch := []wire.Datagram{{10}, {11, 11}, {12}}
	if n, err := WriteBatch(c, batch); n != 3 || err != nil {
		t.Fatalf("WriteBatch = %d, %v", n, err)
	}
	if len(c.sent) != 3 || !bytes.Equal(c.sent[1], []byte{11, 11}) {
		t.Fatalf("scalar fallback sent %v", c.sent)
	}
	// ReadBatch on a scalar conn fills exactly one buffer per call.
	bufs := []wire.Datagram{make([]byte, 8), make([]byte, 8)}
	n, err := ReadBatch(c, bufs)
	if n != 1 || err != nil {
		t.Fatalf("ReadBatch = %d, %v; want 1, nil", n, err)
	}
	if !bytes.Equal(bufs[0], []byte{1, 2, 3}) {
		t.Fatalf("ReadBatch filled %v", bufs[0])
	}
}

// --- loopback: batched and scalar sends are behaviourally identical ---

// TestLoopbackBatchScalarEquivalence drives the same datagram sequence
// through a stepper-backed loopback receiver three ways — scalar Sends,
// WriteBatch in ragged chunks, and scalar Sends through the equivalent
// scalar Gilbert chain — and requires byte-identical delivery: the same
// datagrams lost, the same order through the queue.
func TestLoopbackBatchScalarEquivalence(t *testing.T) {
	const (
		seed  = 421
		p, q  = 0.2, 0.4
		total = 500
	)
	payload := func(i int) []byte { return []byte{byte(i >> 8), byte(i), 0xEE} }

	drain := func(rx Conn) []string {
		rx.SetReadDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
		var got []string
		buf := make([]byte, 16)
		for {
			n, err := rx.Recv(buf)
			if err != nil {
				return got
			}
			got = append(got, fmt.Sprintf("%x", buf[:n]))
		}
	}

	stepper, ok := channel.GilbertFactory{P: p, Q: q}.Batch()
	if !ok {
		t.Fatal("GilbertFactory should support batched stepping")
	}

	// Scalar sends through the stepper-backed receiver.
	hubA := NewLoopback()
	rxA := hubA.ReceiverStepper(stepper, seed, total)
	txA := hubA.Sender()
	for i := 0; i < total; i++ {
		if err := txA.Send(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	gotScalar := drain(rxA)
	hubA.Close()

	// Batched sends, ragged chunk sizes (never a multiple of 64, so
	// StepMask widths vary across and within calls).
	hubB := NewLoopback()
	rxB := hubB.ReceiverStepper(stepper, seed, total)
	txB := hubB.Sender()
	for i, sizes := 0, []int{7, 64, 13, 1, 100}; i < total; {
		n := sizes[i%len(sizes)]
		if i+n > total {
			n = total - i
		}
		batch := make([]wire.Datagram, n)
		for j := range batch {
			batch[j] = payload(i + j)
		}
		if w, err := WriteBatch(txB, batch); w != n || err != nil {
			t.Fatalf("WriteBatch = %d, %v", w, err)
		}
		i += n
	}
	gotBatch := drain(rxB)
	hubB.Close()

	// Scalar Gilbert chain over the same splitmix64 stream — the golden
	// reference the stepper is documented to reproduce bit for bit.
	src := &core.SplitMixSource{}
	src.Seed(seed)
	hubC := NewLoopback()
	rxC := hubC.Receiver(channel.NewGilbert(p, q, rand.New(src)), total)
	txC := hubC.Sender()
	for i := 0; i < total; i++ {
		if err := txC.Send(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	gotChain := drain(rxC)
	hubC.Close()

	if len(gotScalar) == total {
		t.Fatalf("loss model erased nothing across %d sends — test is vacuous", total)
	}
	for name, got := range map[string][]string{"batched": gotBatch, "scalar chain": gotChain} {
		if len(got) != len(gotScalar) {
			t.Fatalf("%s delivered %d datagrams, scalar stepper %d", name, len(got), len(gotScalar))
		}
		for i := range got {
			if got[i] != gotScalar[i] {
				t.Fatalf("%s diverges at delivery %d: %s vs %s", name, i, got[i], gotScalar[i])
			}
		}
	}
}

// TestLoopbackReadBatchDrain checks the loopback ReadBatch blocks for
// the first datagram and drains the queued rest without blocking.
func TestLoopbackReadBatchDrain(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	rx := hub.Receiver(nil, 64)
	tx := hub.Sender()
	batch := make([]wire.Datagram, 10)
	for i := range batch {
		batch[i] = []byte{byte(i)}
	}
	if _, err := WriteBatch(tx, batch); err != nil {
		t.Fatal(err)
	}
	bufs := make([]wire.Datagram, 16)
	for i := range bufs {
		bufs[i] = make([]byte, 8)
	}
	n, err := ReadBatch(rx, bufs)
	if err != nil || n != 10 {
		t.Fatalf("ReadBatch = %d, %v; want 10, nil", n, err)
	}
	for i := 0; i < n; i++ {
		if len(bufs[i]) != 1 || bufs[i][0] != byte(i) {
			t.Fatalf("datagram %d = %v", i, bufs[i])
		}
	}
}

// --- pacer: batch debit converges to the scalar long-run rate ---

func TestPacerBatchConvergence(t *testing.T) {
	const (
		rate   = 50_000.0
		burst  = 32
		tokens = 5_000
	)
	ctx := context.Background()
	elapse := func(step int) time.Duration {
		p := newPacer(rate, burst, nil)
		start := time.Now()
		for taken := 0; taken < tokens; taken += step {
			if err := p.Take(ctx, step); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	scalar := elapse(1)
	batched := elapse(16)
	// The burst is free; the rest must be admitted at ~rate either way.
	ideal := time.Duration(float64(tokens-burst) / rate * float64(time.Second))
	for name, d := range map[string]time.Duration{"scalar": scalar, "batched": batched} {
		if d < ideal*7/10 {
			t.Errorf("%s pacing admitted %d tokens in %v — faster than the configured rate (ideal %v)", name, tokens, d, ideal)
		}
		if d > ideal*3 {
			t.Errorf("%s pacing took %v for %d tokens — far above the configured rate (ideal %v)", name, d, tokens, ideal)
		}
	}
	// take(n) with n above the burst must not deadlock and must still
	// average the configured rate via debt accounting.
	p := newPacer(rate, burst, nil)
	start := time.Now()
	const bigBatches = 20
	for i := 0; i < bigBatches; i++ {
		if err := p.Take(ctx, 100); err != nil { // 100 > burst 32
			t.Fatal(err)
		}
	}
	d := time.Since(start)
	idealBig := time.Duration(float64(bigBatches*100-burst) / rate * float64(time.Second))
	if d < idealBig*7/10 {
		t.Errorf("over-burst batches admitted in %v, ideal %v — debt accounting broken", d, idealBig)
	}
}

// --- sender: batched round loop emits the identical carousel ---

// captureBatchConn is sender_test.go's captureConn with a batch path:
// WriteBatch records datagram by datagram, so the sender's batched
// flushes hit a real BatchConn and land in frames in wire order.
type captureBatchConn struct {
	captureConn
	batches int
}

func (c *captureBatchConn) WriteBatch(batch []wire.Datagram) (int, error) {
	c.batches++
	for _, d := range batch {
		c.frames = append(c.frames, append([]byte(nil), d...))
	}
	return len(batch), nil
}

func (c *captureBatchConn) ReadBatch(bufs []wire.Datagram) (int, error) {
	return readBatchScalar(c, bufs)
}

func TestSenderBatchedScalarIdenticalCarousel(t *testing.T) {
	run := func(conn Conn, batchSize int) SenderStats {
		t.Helper()
		objA := encodeTestObject(t, testFile(t, 32<<10, 1), 1, wire.CodeLDGMStaircase, 2.0, 512)
		objB := encodeTestObject(t, testFile(t, 16<<10, 2), 2, wire.CodeRSE, 1.5, 512)
		s := NewSender(conn, SenderConfig{Rounds: 3, Seed: 9, BatchSize: batchSize})
		if err := s.Add(objA); err != nil {
			t.Fatal(err)
		}
		if err := s.Add(objB); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		s.Close()
		return st
	}
	scalar := &captureConn{}
	scalarStats := run(scalar, 0)
	batched := &captureBatchConn{}
	batchedStats := run(batched, 7) // odd size forces ragged tail flushes

	if len(scalar.frames) != len(batched.frames) {
		t.Fatalf("scalar sent %d datagrams, batched %d", len(scalar.frames), len(batched.frames))
	}
	for i := range scalar.frames {
		if !bytes.Equal(scalar.frames[i], batched.frames[i]) {
			t.Fatalf("carousel diverges at datagram %d", i)
		}
	}
	if scalarStats.PacketsSent != batchedStats.PacketsSent || scalarStats.BytesSent != batchedStats.BytesSent {
		t.Fatalf("stats diverge: scalar %+v, batched %+v", scalarStats, batchedStats)
	}
	if batchedStats.Batches == 0 || batched.batches == 0 {
		t.Fatal("batched run recorded no batch flushes")
	}
	if want := batchedStats.PacketsSent - batchedStats.Batches; batchedStats.SyscallsSaved != want {
		t.Fatalf("SyscallsSaved = %d, want packets-batches = %d", batchedStats.SyscallsSaved, want)
	}
	if scalarStats.Batches != 0 {
		t.Fatalf("scalar run recorded %d batch flushes", scalarStats.Batches)
	}
}

// discardBatchConn is discardConn with a batch path, for the alloc
// ceiling: WriteBatch must not make the conn the allocation.
type discardBatchConn struct {
	packets int
	batches int
}

func (c *discardBatchConn) Send([]byte) error { c.packets++; return nil }
func (c *discardBatchConn) WriteBatch(batch []wire.Datagram) (int, error) {
	c.packets += len(batch)
	c.batches++
	return len(batch), nil
}
func (c *discardBatchConn) Recv([]byte) (int, error) { return 0, ErrClosed }
func (c *discardBatchConn) ReadBatch(bufs []wire.Datagram) (int, error) {
	return readBatchScalar(c, bufs)
}
func (c *discardBatchConn) SetReadDeadline(time.Time) error { return nil }
func (c *discardBatchConn) Close() error                    { return nil }
func (c *discardBatchConn) LocalAddr() string               { return "discard-batch" }

// TestSenderBatchedRoundAllocCeiling asserts the steady-state batched
// round loop allocates nothing: across many rounds the amortized
// allocations per round must stay below one (the handful of setup
// allocations — sender, batch scratch, cursors — divided away).
func TestSenderBatchedRoundAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation ceilings are meaningless under the race detector")
	}
	objA := encodeTestObject(t, testFile(t, 128<<10, 1), 1, wire.CodeLDGMStaircase, 2.5, 1024)
	objB := encodeTestObject(t, testFile(t, 64<<10, 2), 2, wire.CodeRSE, 1.5, 1024)
	defer objA.Close()
	defer objB.Close()
	conn := &discardBatchConn{}
	const rounds = 64
	allocs := testing.AllocsPerRun(5, func() {
		s := NewSender(conn, SenderConfig{Seed: 2, Rounds: rounds, BatchSize: 32})
		if err := s.Add(objA); err != nil {
			t.Fatal(err)
		}
		if err := s.Add(objB); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
	if perRound := allocs / rounds; perRound >= 1 {
		t.Errorf("batched round loop allocates %.2f/round (%.0f total over %d rounds); want amortized 0",
			perRound, allocs, rounds)
	}
	if conn.batches == 0 {
		t.Fatal("batched path never flushed")
	}
}

// --- end to end: a lossy cast over batched UDP sockets ---

// gilbertLossConn wraps a real Conn and erases datagrams with a Gilbert
// chain before they reach the socket — live loss injection for the e2e
// test, applied identically on the scalar and batched write paths.
type gilbertLossConn struct {
	Conn
	ch core.Channel
}

func (c *gilbertLossConn) Send(d []byte) error {
	if c.ch.Lost() {
		return nil
	}
	return c.Conn.Send(d)
}

func (c *gilbertLossConn) WriteBatch(batch []wire.Datagram) (int, error) {
	kept := make([]wire.Datagram, 0, len(batch))
	for _, d := range batch {
		if !c.ch.Lost() {
			kept = append(kept, d)
		}
	}
	if _, err := WriteBatch(c.Conn, kept); err != nil {
		return 0, err
	}
	return len(batch), nil
}

func (c *gilbertLossConn) ReadBatch(bufs []wire.Datagram) (int, error) {
	return ReadBatch(c.Conn, bufs)
}

// TestCastBatchedUDPGilbertEndToEnd casts 500 KiB through Gilbert loss
// over real UDP sockets with the whole batched datapath engaged —
// batched carousel flushes, sendmmsg/GSO where available, recvmmsg
// ingest — and requires the collected stream to hash identically to the
// source.
func TestCastBatchedUDPGilbertEndToEnd(t *testing.T) {
	rxConn, txConn := udpPair(t)
	src := &core.SplitMixSource{}
	src.Seed(77)
	lossy := &gilbertLossConn{Conn: txConn, ch: channel.NewGilbert(0.02, 0.5, rand.New(src))}

	source := testFile(t, 500<<10, 3)
	var sink bytes.Buffer
	col := NewCollector(rxConn, &sink, CollectorConfig{BaseObjectID: 900, ReadBatch: 32})
	colCtx, cancelCol := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelCol()
	colDone := make(chan error, 1)
	go func() { colDone <- col.Run(colCtx) }()

	caster, err := NewCaster(lossy, bytes.NewReader(source), CasterConfig{
		BaseObjectID: 900,
		K:            64,
		PayloadSize:  1024,
		Ratio:        1.8,
		Rounds:       3,
		BatchSize:    32,
		// Pace below the loopback interface's comfort zone so kernel
		// buffers cannot overflow even on a loaded runner; loss comes
		// from the Gilbert chain, not congestion.
		Rate: 20_000,
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := caster.Run(context.Background()); err != nil {
		t.Fatalf("caster: %v", err)
	}
	if err := <-colDone; err != nil {
		t.Fatalf("collector: %v (stats %+v)", err, col.CollectStats())
	}
	if sha256.Sum256(sink.Bytes()) != sha256.Sum256(source) {
		t.Fatal("collected stream hash differs from source")
	}
	if lossyStats := col.Stats(); lossyStats.PacketsSeen == 0 {
		t.Fatal("collector saw no packets")
	}
}
