package transport

import (
	"context"
	"time"

	"fecperf/internal/obs"
)

// pacer is a token-bucket rate limiter counted in packets. It exists so
// the sender can hold a broadcast to the session bitrate (ALC sessions
// are announced with a fixed rate) instead of free-running and flooding
// kernel buffers. A nil pacer means "as fast as the socket allows".
type pacer struct {
	rate   float64 // tokens (packets) added per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
	waitNS *obs.Counter // accumulated sleep time (nil-safe)
}

// newPacer returns a pacer admitting rate packets/second with the given
// burst, or nil when rate <= 0 (unpaced). Sleep time accrues on waitNS
// from the already-computed delay — no extra clock reads on the send
// path.
func newPacer(rate float64, burst int, waitNS *obs.Counter) *pacer {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 32
	}
	return &pacer{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now(), waitNS: waitNS}
}

// wait blocks until one token is available (or ctx is done) and consumes
// it. Refill accounting is exact: tokens accrue continuously at rate and
// cap at burst.
func (p *pacer) wait(ctx context.Context) error { return p.take(ctx, 1) }

// take blocks until n tokens are available (or ctx is done) and consumes
// them in one debit — the batched sender charges a whole flush with one
// call instead of n. Refill accounting is exact: tokens accrue
// continuously at rate and cap at burst. n may exceed the burst: the
// bucket then goes into debt (tokens become negative after the debit),
// so a steady stream of over-burst batches still averages exactly rate
// packets per second — the same long-run admission the scalar path
// gives, delivered in batch-sized bursts.
func (p *pacer) take(ctx context.Context, n int) error {
	if p == nil || n <= 0 {
		// Still honour cancellation on the fast path.
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
			return nil
		}
	}
	need := float64(n)
	// Over-burst batches cannot wait for the bucket to hold n at once —
	// it never will. Wait only until the bucket is full (or holds n),
	// then debit and run negative; the debt throttles later takes.
	target := need
	if target > p.burst {
		target = p.burst
	}
	now := time.Now()
	p.tokens += now.Sub(p.last).Seconds() * p.rate
	p.last = now
	if p.tokens > p.burst {
		p.tokens = p.burst
	}
	if p.tokens >= target {
		p.tokens -= need
		return nil
	}
	delay := time.Duration((target - p.tokens) / p.rate * float64(time.Second))
	p.waitNS.Add(uint64(delay))
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case now = <-t.C:
		p.tokens += now.Sub(p.last).Seconds() * p.rate
		p.last = now
		if p.tokens > p.burst {
			p.tokens = p.burst
		}
		p.tokens -= need
		return nil
	}
}
