package transport

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"fecperf/internal/obs"
)

// Pacer admits packet transmissions. Take blocks until n tokens are
// available (or ctx is done) and consumes them in one debit; n == 0 is a
// cancellation check. The sender's built-in token bucket implements it,
// and SenderConfig.Pacer accepts any external implementation — the
// daemon's SharedPacer hands every cast's sender a PacerShare so many
// carousels divide one line-rate budget.
type Pacer interface {
	Take(ctx context.Context, n int) error
}

// timedPacer adapts an external Pacer (SenderConfig.Pacer) to the
// sender's pacer-wait accounting: time blocked in Take accrues on the
// sender's counter, so per-cast pacer-wait metrics read the same whether
// the sender paces itself or draws from a SharedPacer.
type timedPacer struct {
	p      Pacer
	waitNS *obs.Counter
}

func (t timedPacer) Take(ctx context.Context, n int) error {
	start := time.Now()
	err := t.p.Take(ctx, n)
	if d := time.Since(start); d > time.Microsecond {
		t.waitNS.Add(uint64(d))
	}
	return err
}

// pacer is a token-bucket rate limiter counted in packets. It exists so
// the sender can hold a broadcast to the session bitrate (ALC sessions
// are announced with a fixed rate) instead of free-running and flooding
// kernel buffers. A nil pacer means "as fast as the socket allows".
type pacer struct {
	rate   float64 // tokens (packets) added per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
	waitNS *obs.Counter // accumulated sleep time (nil-safe)
}

// newPacer returns a pacer admitting rate packets/second with the given
// burst, or nil when rate <= 0 (unpaced). Sleep time accrues on waitNS
// from the already-computed delay — no extra clock reads on the send
// path.
func newPacer(rate float64, burst int, waitNS *obs.Counter) *pacer {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 32
	}
	return &pacer{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now(), waitNS: waitNS}
}

// Take blocks until n tokens are available (or ctx is done) and consumes
// them in one debit — the batched sender charges a whole flush with one
// call instead of n. Refill accounting is exact: tokens accrue
// continuously at rate and cap at burst. n may exceed the burst: the
// bucket then goes into debt (tokens become negative after the debit),
// so a steady stream of over-burst batches still averages exactly rate
// packets per second — the same long-run admission the scalar path
// gives, delivered in batch-sized bursts.
func (p *pacer) Take(ctx context.Context, n int) error {
	// Honour cancellation on every admission, including the token-rich
	// fast path: the sender's round loop relies on Take to notice a
	// cancelled context, and a sender running below its rate would
	// otherwise never block and never see it.
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	if p == nil || n <= 0 {
		return nil
	}
	need := float64(n)
	// Over-burst batches cannot wait for the bucket to hold n at once —
	// it never will. Wait only until the bucket is full (or holds n),
	// then debit and run negative; the debt throttles later takes.
	target := need
	if target > p.burst {
		target = p.burst
	}
	now := time.Now()
	p.tokens += now.Sub(p.last).Seconds() * p.rate
	p.last = now
	if p.tokens > p.burst {
		p.tokens = p.burst
	}
	if p.tokens >= target {
		p.tokens -= need
		return nil
	}
	delay := time.Duration((target - p.tokens) / p.rate * float64(time.Second))
	p.waitNS.Add(uint64(delay))
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case now = <-t.C:
		p.tokens += now.Sub(p.last).Seconds() * p.rate
		p.last = now
		if p.tokens > p.burst {
			p.tokens = p.burst
		}
		p.tokens -= need
		return nil
	}
}

// SharedPacer is a hierarchical token-bucket pacer: the line-rate
// budget is sliced into weighted per-cast assured buckets, and unused
// capacity pools for whoever needs it. The hierarchy is HTB-shaped with
// spill-fed borrowing:
//
//   - each share owns an assured bucket refilling at rate·weight/Σweights
//     (its guaranteed slice of the line rate) — admission debits only
//     this bucket, so a saturated share is paced by its own slice exactly
//     and contended fleets split the rate in precise weight proportion.
//     Every bucket is the full global burst deep: burst absorbs timer
//     jitter rather than slicing by weight, so a busy share's wake-up
//     overshoot lands in its own bucket instead of spilling to rivals
//     (fairness lives in the rates, not the depths);
//   - an idle share's bucket caps at that burst; income past the cap
//     spills into the shared surplus pool, which is the only way the
//     pool gains tokens — it holds precisely the capacity nobody's
//     assured admission claimed;
//   - a share whose assured bucket cannot cover a batch borrows from the
//     pool, which is what makes the pacer work-conserving: one active
//     cast among many registered ones runs at the full line rate, and
//     the moment the others wake the spill dries up and everyone
//     converges back to their weighted slices.
//
// Shares use the same batch-debit debt accounting as the sender's own
// pacer: Take(n) with n above the share's burst waits only until the
// bucket is full, debits the whole batch and runs the bucket negative,
// so over-burst batches still average the assured rate. The debt is
// bounded by maxSendBatch - 1 tokens and drains within
// Debt()/assured-rate seconds — and it never survives a reconfiguration:
// AddShare, Close and SetWeight all clamp every share's debt to zero, so
// a cast resized down is not additionally throttled for bursts it sent
// under its old, larger share.
//
// All methods are safe for concurrent use.
type SharedPacer struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	pool   float64 // spill surplus: capacity idle shares released
	last   time.Time
	shares []*PacerShare
	sumW   float64
}

// DefaultSharedBurst is the global bucket depth when NewSharedPacer is
// given burst <= 0: deep enough that a full maxSendBatch flush from a
// few casts clears without synthetic stalls.
const DefaultSharedBurst = 4 * maxSendBatch

// NewSharedPacer returns a hierarchical pacer admitting rate packets per
// second in aggregate. burst <= 0 selects DefaultSharedBurst. A rate
// <= 0 returns nil: the nil *SharedPacer is valid and unpaced (its
// shares admit everything), mirroring newPacer. The pool starts full —
// the start-up burst — so a fresh fleet's first batches clear without
// synthetic stalls.
func NewSharedPacer(rate float64, burst int) *SharedPacer {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if burst <= 0 {
		b = DefaultSharedBurst
	}
	return &SharedPacer{rate: rate, burst: b, pool: b, last: time.Now()}
}

// Rate returns the aggregate line-rate budget in packets per second
// (0 for the nil, unpaced pacer).
func (sp *SharedPacer) Rate() float64 {
	if sp == nil {
		return 0
	}
	return sp.rate
}

// AddShare registers a new share with the given weight (values <= 0 are
// treated as 1) and returns it. Every share's assured rate is
// rate·weight/Σweights; adding a share re-slices all existing shares and
// clamps their debt to zero. A nil SharedPacer returns a nil share,
// which admits everything — the unpaced configuration needs no special
// casing downstream.
func (sp *SharedPacer) AddShare(weight float64) *PacerShare {
	if sp == nil {
		return nil
	}
	if weight <= 0 {
		weight = 1
	}
	ps := &PacerShare{sp: sp, weight: weight}
	sp.mu.Lock()
	now := time.Now()
	sp.refillAllLocked(now)
	sp.shares = append(sp.shares, ps)
	sp.resliceLocked()
	sp.mu.Unlock()
	return ps
}

// refillAllLocked accrues every share's assured income up to now and
// spills each bucket's overflow into the surplus pool. One pass settles
// the whole hierarchy, so idle shares release their capacity without
// ever calling Take — the pool's balance is exactly the income no
// assured bucket had room for. Buckets are full-burst deep, so a busy
// share never sits at its cap between admissions and only genuinely
// idle capacity ever spills.
func (sp *SharedPacer) refillAllLocked(now time.Time) {
	dt := now.Sub(sp.last).Seconds()
	sp.last = now
	if dt <= 0 {
		return
	}
	for _, ps := range sp.shares {
		income := dt * ps.rate
		ps.tokens += income
		ps.entitled += income
		if ps.tokens > ps.burst {
			sp.pool += ps.tokens - ps.burst
			ps.tokens = ps.burst
		}
	}
	if sp.pool > sp.burst {
		sp.pool = sp.burst
	}
}

// resliceLocked recomputes every share's assured rate and burst after a
// membership or weight change (the caller settles accrual with
// refillAllLocked first). Token debt is cleared: debt is an artifact of
// batches admitted under the old slicing, and carrying it across a
// resize would throttle a cast for history that no longer describes its
// entitlement. The pool restarts the new regime non-negative for the
// same reason.
func (sp *SharedPacer) resliceLocked() {
	sp.sumW = 0
	for _, ps := range sp.shares {
		sp.sumW += ps.weight
	}
	for _, ps := range sp.shares {
		ps.rate = sp.rate * ps.weight / sp.sumW
		ps.burst = sp.burst
		if ps.tokens < 0 {
			ps.tokens = 0
		}
		if ps.tokens > ps.burst {
			ps.tokens = ps.burst
		}
	}
	if sp.pool < 0 {
		sp.pool = 0
	}
}

// PacerShare is one cast's slice of a SharedPacer. It implements Pacer;
// hand it to SenderConfig.Pacer or CasterConfig.Pacer. The nil share
// admits everything (the unpaced configuration).
type PacerShare struct {
	sp     *SharedPacer
	weight float64

	// All fields below are guarded by sp.mu.
	rate     float64 // assured slice: sp.rate · weight / Σweights
	burst    float64
	tokens   float64
	taken    float64 // tokens consumed over the share's lifetime
	entitled float64 // assured tokens accrued over the share's lifetime
	closed   bool
}

// Take implements Pacer: it blocks until the share's assured bucket (or
// the surplus pool's work-conserving spill) covers the batch, then
// debits the bucket it admitted from. See SharedPacer for the admission
// and debt semantics.
func (ps *PacerShare) Take(ctx context.Context, n int) error {
	// As with pacer.Take: cancellation must surface even when tokens
	// are plentiful and no admission ever blocks.
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	if ps == nil || n <= 0 {
		return nil
	}
	sp := ps.sp
	need := float64(n)
	for {
		sp.mu.Lock()
		if ps.closed {
			sp.mu.Unlock()
			return fmt.Errorf("transport: pacer share closed")
		}
		sp.refillAllLocked(time.Now())
		// Assured admission: the share's own bucket covers the batch
		// (over-burst batches wait for a full bucket and run it into
		// debt, exactly like pacer.Take). Only this bucket is debited,
		// so under contention every share is paced by precisely its
		// weighted slice — fairness needs no coordination.
		target := need
		if target > ps.burst {
			target = ps.burst
		}
		if ps.tokens >= target {
			ps.tokens -= need
			ps.taken += need
			sp.mu.Unlock()
			return nil
		}
		// Work-conserving borrow: the pool holds only what idle shares
		// spilled, so borrowing takes capacity that was nobody's
		// entitlement — it costs no future assured admission and cannot
		// starve a contending share.
		ptarget := need
		if ptarget > sp.burst {
			ptarget = sp.burst
		}
		if sp.pool >= ptarget {
			sp.pool -= need
			ps.taken += need
			sp.mu.Unlock()
			return nil
		}
		// Wait for the earlier of: own assured refill covering target,
		// or spill refilling the pool to ptarget. Spill accrues at the
		// capped (idle) shares' combined rate; the estimate is
		// optimistic — a competitor may claim the spill first — so
		// admission re-checks on wake, and the assured refill bounds the
		// wait either way.
		dChild := math.Inf(1)
		if ps.rate > 0 {
			dChild = (target - ps.tokens) / ps.rate
		}
		spillRate := 0.0
		for _, s := range sp.shares {
			if s.tokens >= s.burst {
				spillRate += s.rate
			}
		}
		dPool := math.Inf(1)
		if spillRate > 0 {
			dPool = (ptarget - sp.pool) / spillRate
		}
		d := dChild
		if dPool < d {
			d = dPool
		}
		sp.mu.Unlock()
		t := time.NewTimer(time.Duration(d * float64(time.Second)))
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// Weight returns the share's current weight.
func (ps *PacerShare) Weight() float64 {
	if ps == nil {
		return 0
	}
	ps.sp.mu.Lock()
	defer ps.sp.mu.Unlock()
	return ps.weight
}

// SetWeight resizes the share (values <= 0 are treated as 1),
// re-slicing every share of the pacer. Token debt does not carry across
// the change: all shares restart the new regime debt-free.
func (ps *PacerShare) SetWeight(weight float64) {
	if ps == nil {
		return
	}
	if weight <= 0 {
		weight = 1
	}
	sp := ps.sp
	sp.mu.Lock()
	sp.refillAllLocked(time.Now())
	ps.weight = weight
	sp.resliceLocked()
	sp.mu.Unlock()
}

// Debt returns the share's current token debt — how many packets of a
// past over-burst batch are still unpaid. It is bounded by the batch
// size of the largest single Take minus the share's burst, and drains at
// the assured rate; SetWeight, AddShare and Close reset it to zero.
func (ps *PacerShare) Debt() float64 {
	if ps == nil {
		return 0
	}
	sp := ps.sp
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.refillAllLocked(time.Now())
	if ps.tokens >= 0 {
		return 0
	}
	return -ps.tokens
}

// Utilization reports the share's lifetime consumption relative to its
// assured entitlement: 1.0 means the cast consumed exactly its weighted
// slice, below 1 it left capacity for others, above 1 it borrowed the
// surplus idle shares released. Returns 0 before any entitlement
// accrues.
func (ps *PacerShare) Utilization() float64 {
	if ps == nil {
		return 0
	}
	sp := ps.sp
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.refillAllLocked(time.Now())
	if ps.entitled <= 0 {
		return 0
	}
	return ps.taken / ps.entitled
}

// Close removes the share from its pacer, re-slicing the remaining
// shares (their assured rates grow to cover the freed weight). Pending
// and future Takes on the closed share fail.
func (ps *PacerShare) Close() {
	if ps == nil {
		return
	}
	sp := ps.sp
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if ps.closed {
		return
	}
	ps.closed = true
	for i, s := range sp.shares {
		if s == ps {
			sp.shares = append(sp.shares[:i], sp.shares[i+1:]...)
			break
		}
	}
	sp.refillAllLocked(time.Now())
	if len(sp.shares) > 0 {
		sp.resliceLocked()
	} else {
		sp.sumW = 0
	}
}
