//go:build !(linux && (amd64 || arm64))

package transport

import (
	"bytes"
	"testing"
	"time"

	"fecperf/internal/wire"
)

// TestUDPFallbackBatchContract proves the portable (non-mmsg) UDP batch
// path satisfies the BatchConn contract: WriteBatch delivers the whole
// batch in order, ReadBatch blocks for at least one datagram and
// re-slices what it fills, and GSO is reported off. It runs only on
// platforms without the Linux sendmmsg datapath — the cross-compile CI
// steps keep it building, and any non-Linux `go test` exercises it.
func TestUDPFallbackBatchContract(t *testing.T) {
	rx, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer rx.Close()
	tx, err := DialUDP(rx.LocalAddr())
	if err != nil {
		t.Fatalf("DialUDP: %v", err)
	}
	defer tx.Close()

	if tx.(interface{ GSOEnabled() bool }).GSOEnabled() {
		t.Fatal("portable fallback must report GSO disabled")
	}
	bc, ok := tx.(BatchConn)
	if !ok {
		t.Fatal("fallback udpConn must still implement BatchConn")
	}
	batch := make([]wire.Datagram, 40)
	for i := range batch {
		batch[i] = bytes.Repeat([]byte{byte(i)}, 200)
	}
	if n, err := bc.WriteBatch(batch); n != len(batch) || err != nil {
		t.Fatalf("WriteBatch = %d, %v; want %d, nil", n, err, len(batch))
	}
	rx.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	got := 0
	for got < len(batch) {
		bufs := make([]wire.Datagram, 8)
		for i := range bufs {
			bufs[i] = make([]byte, 1024)
		}
		m, err := ReadBatch(rx, bufs)
		if err != nil {
			t.Fatalf("ReadBatch after %d: %v", got, err)
		}
		if m == 0 {
			t.Fatal("ReadBatch returned 0 with nil error")
		}
		for i := 0; i < m; i++ {
			if !bytes.Equal(bufs[i], batch[got+i]) {
				t.Fatalf("datagram %d corrupted or reordered", got+i)
			}
		}
		got += m
	}
}
