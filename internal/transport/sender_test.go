package transport

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"fecperf/internal/sched"
	"fecperf/internal/session"
	"fecperf/internal/wire"
)

func TestSenderCarouselRoundsAndInterleave(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	rx := hub.Receiver(nil, 65536)

	a := encodeTestObject(t, testFile(t, 8<<10, 1), 1, wire.CodeLDGMStaircase, 2.0, 512)
	b := encodeTestObject(t, testFile(t, 8<<10, 2), 2, wire.CodeLDGMStaircase, 2.0, 512)
	s := NewSender(hub.Sender(), SenderConfig{Rounds: 3, Scheduler: sched.TxModel4{}, Seed: 5})
	if err := s.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(b); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := s.Stats()
	wantPkts := uint64(3 * (a.N() + b.N()))
	if st.PacketsSent != wantPkts {
		t.Errorf("PacketsSent = %d, want %d", st.PacketsSent, wantPkts)
	}
	if st.Rounds != 3 {
		t.Errorf("Rounds = %d, want 3", st.Rounds)
	}

	// Every datagram must parse, and each round must deliver each
	// object's full packet set, interleaved (objects alternate while
	// both still have packets to send).
	rx.SetReadDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
	buf := make([]byte, 2048)
	counts := map[uint32]int{}
	var firstIDs []uint32
	for {
		n, err := rx.Recv(buf)
		if err != nil {
			break
		}
		p, err := wire.Decode(buf[:n])
		if err != nil {
			t.Fatalf("broadcast datagram does not parse: %v", err)
		}
		counts[p.ObjectID]++
		if len(firstIDs) < 10 {
			firstIDs = append(firstIDs, p.ObjectID)
		}
	}
	if counts[1] != 3*a.N() || counts[2] != 3*b.N() {
		t.Errorf("per-object counts = %v, want %d and %d", counts, 3*a.N(), 3*b.N())
	}
	for i := 0; i+1 < len(firstIDs); i += 2 {
		if firstIDs[i] == firstIDs[i+1] {
			t.Fatalf("objects not interleaved: first datagrams %v", firstIDs)
		}
	}
}

func TestSenderPacing(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	obj := encodeTestObject(t, testFile(t, 4<<10, 3), 9, wire.CodeLDGMStaircase, 2.0, 256)
	// ~48 packets at 400 pkt/s with burst 1 ≈ 120 ms.
	s := NewSender(hub.Sender(), SenderConfig{Rounds: 1, Rate: 400, Burst: 1, Seed: 1})
	if err := s.Add(obj); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	elapsed := time.Since(start)
	want := time.Duration(float64(obj.N()-1) / 400 * float64(time.Second))
	if elapsed < want/2 {
		t.Errorf("paced send of %d packets took %v, want ≥ %v", obj.N(), elapsed, want/2)
	}
}

func TestSenderGracefulCancel(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	obj := encodeTestObject(t, testFile(t, 16<<10, 4), 3, wire.CodeLDGMStaircase, 2.0, 512)
	s := NewSender(hub.Sender(), SenderConfig{Rate: 100, Seed: 1}) // Rounds: 0 = infinite
	if err := s.Add(obj); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Run(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want context.DeadlineExceeded", err)
	}
	if sent := s.Stats().PacketsSent; sent == 0 || sent >= uint64(obj.N()) {
		t.Errorf("PacketsSent = %d, want a partial round (0 < sent < %d)", sent, obj.N())
	}
}

func TestSenderRequiresObjects(t *testing.T) {
	s := NewSender(NewLoopback().Sender(), SenderConfig{})
	if err := s.Run(context.Background()); err == nil {
		t.Fatal("Run with no objects succeeded, want error")
	}
}

// TestSenderHonoursNSent verifies the carousel applies the object's
// Section-6 n_sent truncation to every round, matching Object.Send.
func TestSenderHonoursNSent(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	rx := hub.Receiver(nil, 4096)
	obj, err := session.EncodeObject(testFile(t, 8<<10, 6), session.SenderConfig{
		ObjectID:    4,
		Family:      wire.CodeLDGMStaircase,
		Ratio:       2.0,
		PayloadSize: 512,
		Seed:        3,
		NSent:       10,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSender(hub.Sender(), SenderConfig{Rounds: 2, Seed: 8})
	if err := s.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().PacketsSent; got != 20 {
		t.Errorf("PacketsSent = %d, want 20 (NSent=10 × 2 rounds)", got)
	}
	rx.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //nolint:errcheck
	buf := make([]byte, 2048)
	n := 0
	for {
		if _, err := rx.Recv(buf); err != nil {
			break
		}
		n++
	}
	if n != 20 {
		t.Errorf("received %d datagrams, want 20", n)
	}
}

// captureConn records every datagram handed to Send.
type captureConn struct {
	frames [][]byte
}

func (c *captureConn) Send(d []byte) error {
	c.frames = append(c.frames, append([]byte(nil), d...))
	return nil
}
func (c *captureConn) Recv([]byte) (int, error)        { return 0, ErrClosed }
func (c *captureConn) SetReadDeadline(time.Time) error { return nil }
func (c *captureConn) Close() error                    { return nil }
func (c *captureConn) LocalAddr() string               { return "capture" }

// TestSenderMidRoundResume verifies the carousel's resume contract:
// a sender restarted at (StartRound, StartPos) emits exactly the byte
// sequence the original run produced from that point on — schedules
// depend only on (Seed, round, object), never on carousel history.
func TestSenderMidRoundResume(t *testing.T) {
	a := encodeTestObject(t, testFile(t, 4<<10, 11), 1, wire.CodeLDGMStaircase, 2.0, 256)
	b := encodeTestObject(t, testFile(t, 2<<10, 12), 2, wire.CodeRSE, 1.5, 256)
	defer a.Close()
	defer b.Close()
	cfg := SenderConfig{Rounds: 3, Scheduler: sched.TxModel4{}, Seed: 99}

	run := func(cfg SenderConfig) [][]byte {
		t.Helper()
		conn := &captureConn{}
		s := NewSender(conn, cfg)
		if err := s.Add(a); err != nil {
			t.Fatal(err)
		}
		if err := s.Add(b); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return conn.frames
	}

	full := run(cfg)

	// Count how many datagrams the full run emitted before round 1,
	// position 17, then resume there and compare the tails.
	resumed := cfg
	resumed.StartRound = 1
	resumed.StartPos = 17
	tail := run(resumed)

	// The prefix length: all of round 0 plus positions [0,17) of round
	// 1. Per round the two objects interleave round-robin, so recompute
	// by replaying the full stream: the resumed stream must equal the
	// full stream's suffix of the same length.
	if len(tail) >= len(full) {
		t.Fatalf("resumed run emitted %d datagrams, full run %d", len(tail), len(full))
	}
	skip := len(full) - len(tail)
	for i := range tail {
		if !bytes.Equal(tail[i], full[skip+i]) {
			t.Fatalf("resumed datagram %d differs from full-run datagram %d", i, skip+i)
		}
	}

	// And the resumed stream must genuinely start mid-round: it covers
	// rounds 1 and 2 minus the skipped positions — strictly between one
	// and two full rounds of datagrams.
	perRound := a.N() + b.N()
	if len(tail) <= perRound || len(tail) >= 2*perRound {
		t.Fatalf("resumed stream length %d not within (%d,%d)", len(tail), perRound, 2*perRound)
	}
}

// TestSenderLazyEncodingSharesNoBuffers ensures the scratch-buffer
// reuse cannot leak between packets: every captured datagram must
// decode to a distinct, consistent packet.
func TestSenderLazyEncodingSharesNoBuffers(t *testing.T) {
	obj := encodeTestObject(t, testFile(t, 4<<10, 13), 5, wire.CodeLDGMStaircase, 2.0, 512)
	conn := &captureConn{}
	s := NewSender(conn, SenderConfig{Rounds: 1, Seed: 4})
	if err := s.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	seen := map[uint32]bool{}
	for _, f := range conn.frames {
		p, err := wire.Decode(f)
		if err != nil {
			t.Fatalf("datagram does not parse: %v", err)
		}
		if seen[p.PacketID] {
			t.Fatalf("packet id %d emitted twice in one round", p.PacketID)
		}
		seen[p.PacketID] = true
	}
	if len(seen) != obj.N() {
		t.Fatalf("round covered %d distinct packets, want %d", len(seen), obj.N())
	}
}

// TestSenderRejectsClosedObject pins the ownership contract: an object
// closed before Add cannot be transmitted.
func TestSenderRejectsClosedObject(t *testing.T) {
	obj := encodeTestObject(t, testFile(t, 1<<10, 14), 6, wire.CodeLDGMStaircase, 2.0, 256)
	obj.Close()
	s := NewSender(&captureConn{}, SenderConfig{})
	if err := s.Add(obj); err == nil {
		t.Fatal("Add accepted a closed object")
	}
}

// TestSenderCloseWaitsForRun pins the lazy-encoding lifecycle: Close
// must synchronize with an in-flight Run, releasing the objects'
// pooled buffers only after the round loop can no longer encode from
// them. (Run under -race would flag any violation via the loopback.)
func TestSenderCloseWaitsForRun(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	obj := encodeTestObject(t, testFile(t, 8<<10, 21), 9, wire.CodeLDGMStaircase, 2.0, 512)
	s := NewSender(hub.Sender(), SenderConfig{Rate: 2000, Seed: 1}) // infinite carousel
	if err := s.Add(obj); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx) }()
	time.Sleep(30 * time.Millisecond) // let the carousel get going

	const cancelAfter = 30 * time.Millisecond
	go func() {
		time.Sleep(cancelAfter)
		cancel()
	}()
	start := time.Now()
	s.Close() // must block until cancellation stops Run
	if waited := time.Since(start); waited < cancelAfter/2 {
		t.Fatalf("Close returned after %v, before the carousel could have stopped", waited)
	}
	select {
	case err := <-runErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}
