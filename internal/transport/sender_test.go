package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"fecperf/internal/sched"
	"fecperf/internal/session"
	"fecperf/internal/wire"
)

func TestSenderCarouselRoundsAndInterleave(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	rx := hub.Receiver(nil, 65536)

	a := encodeTestObject(t, testFile(t, 8<<10, 1), 1, wire.CodeLDGMStaircase, 2.0, 512)
	b := encodeTestObject(t, testFile(t, 8<<10, 2), 2, wire.CodeLDGMStaircase, 2.0, 512)
	s := NewSender(hub.Sender(), SenderConfig{Rounds: 3, Scheduler: sched.TxModel4{}, Seed: 5})
	if err := s.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(b); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := s.Stats()
	wantPkts := uint64(3 * (a.N() + b.N()))
	if st.PacketsSent != wantPkts {
		t.Errorf("PacketsSent = %d, want %d", st.PacketsSent, wantPkts)
	}
	if st.Rounds != 3 {
		t.Errorf("Rounds = %d, want 3", st.Rounds)
	}

	// Every datagram must parse, and each round must deliver each
	// object's full packet set, interleaved (objects alternate while
	// both still have packets to send).
	rx.SetReadDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
	buf := make([]byte, 2048)
	counts := map[uint32]int{}
	var firstIDs []uint32
	for {
		n, err := rx.Recv(buf)
		if err != nil {
			break
		}
		p, err := wire.Decode(buf[:n])
		if err != nil {
			t.Fatalf("broadcast datagram does not parse: %v", err)
		}
		counts[p.ObjectID]++
		if len(firstIDs) < 10 {
			firstIDs = append(firstIDs, p.ObjectID)
		}
	}
	if counts[1] != 3*a.N() || counts[2] != 3*b.N() {
		t.Errorf("per-object counts = %v, want %d and %d", counts, 3*a.N(), 3*b.N())
	}
	for i := 0; i+1 < len(firstIDs); i += 2 {
		if firstIDs[i] == firstIDs[i+1] {
			t.Fatalf("objects not interleaved: first datagrams %v", firstIDs)
		}
	}
}

func TestSenderPacing(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	obj := encodeTestObject(t, testFile(t, 4<<10, 3), 9, wire.CodeLDGMStaircase, 2.0, 256)
	// ~48 packets at 400 pkt/s with burst 1 ≈ 120 ms.
	s := NewSender(hub.Sender(), SenderConfig{Rounds: 1, Rate: 400, Burst: 1, Seed: 1})
	if err := s.Add(obj); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	elapsed := time.Since(start)
	want := time.Duration(float64(obj.N()-1) / 400 * float64(time.Second))
	if elapsed < want/2 {
		t.Errorf("paced send of %d packets took %v, want ≥ %v", obj.N(), elapsed, want/2)
	}
}

func TestSenderGracefulCancel(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	obj := encodeTestObject(t, testFile(t, 16<<10, 4), 3, wire.CodeLDGMStaircase, 2.0, 512)
	s := NewSender(hub.Sender(), SenderConfig{Rate: 100, Seed: 1}) // Rounds: 0 = infinite
	if err := s.Add(obj); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Run(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want context.DeadlineExceeded", err)
	}
	if sent := s.Stats().PacketsSent; sent == 0 || sent >= uint64(obj.N()) {
		t.Errorf("PacketsSent = %d, want a partial round (0 < sent < %d)", sent, obj.N())
	}
}

func TestSenderRequiresObjects(t *testing.T) {
	s := NewSender(NewLoopback().Sender(), SenderConfig{})
	if err := s.Run(context.Background()); err == nil {
		t.Fatal("Run with no objects succeeded, want error")
	}
}

// TestSenderHonoursNSent verifies the carousel applies the object's
// Section-6 n_sent truncation to every round, matching Object.Send.
func TestSenderHonoursNSent(t *testing.T) {
	hub := NewLoopback()
	defer hub.Close()
	rx := hub.Receiver(nil, 4096)
	obj, err := session.EncodeObject(testFile(t, 8<<10, 6), session.SenderConfig{
		ObjectID:    4,
		Family:      wire.CodeLDGMStaircase,
		Ratio:       2.0,
		PayloadSize: 512,
		Seed:        3,
		NSent:       10,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSender(hub.Sender(), SenderConfig{Rounds: 2, Seed: 8})
	if err := s.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().PacketsSent; got != 20 {
		t.Errorf("PacketsSent = %d, want 20 (NSent=10 × 2 rounds)", got)
	}
	rx.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //nolint:errcheck
	buf := make([]byte, 2048)
	n := 0
	for {
		if _, err := rx.Recv(buf); err != nil {
			break
		}
		n++
	}
	if n != 20 {
		t.Errorf("received %d datagrams, want 20", n)
	}
}
