package transport

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"fecperf/internal/wire"
)

// TestUDPBroadcastLocalhost runs the full sender→daemon path over a real
// UDP socket pair on the loopback interface.
func TestUDPBroadcastLocalhost(t *testing.T) {
	rxConn, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer rxConn.Close()
	txConn, err := DialUDP(rxConn.LocalAddr())
	if err != nil {
		t.Fatalf("DialUDP: %v", err)
	}
	defer txConn.Close()

	file := testFile(t, 64<<10, 55)
	obj := encodeTestObject(t, file, 5, wire.CodeLDGMStaircase, 2.0, 1024)

	d := NewReceiverDaemon(rxConn, ReceiverConfig{})
	stop := runDaemon(t, d)
	defer stop()

	// Pace to ~4000 pkt/s so the kernel socket buffer cannot overflow
	// even on a loaded single-CPU runner; the carousel re-sends anyway.
	s := NewSender(txConn, SenderConfig{Rate: 4000, Seed: 2})
	if err := s.Add(obj); err != nil {
		t.Fatal(err)
	}
	senderCtx, stopSender := context.WithCancel(context.Background())
	defer stopSender()
	senderDone := make(chan error, 1)
	go func() { senderDone <- s.Run(senderCtx) }()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	data, err := d.WaitObject(ctx, 5)
	if err != nil {
		t.Fatalf("WaitObject over UDP: %v (stats %+v)", err, d.Stats())
	}
	if !bytes.Equal(data, file) {
		t.Fatal("file corrupted over UDP")
	}
	stopSender()
	if err := <-senderDone; err != context.Canceled {
		t.Fatalf("sender Run = %v, want context.Canceled", err)
	}
}

func TestUDPConnAddrs(t *testing.T) {
	c, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer c.Close()
	if !strings.HasPrefix(c.LocalAddr(), "127.0.0.1:") {
		t.Errorf("LocalAddr = %q, want 127.0.0.1:*", c.LocalAddr())
	}
	if _, err := DialUDP("not-an-address"); err == nil {
		t.Error("DialUDP on garbage address succeeded")
	}
	if _, err := ListenUDP("not-an-address"); err == nil {
		t.Error("ListenUDP on garbage address succeeded")
	}
}
