package transport

import (
	"errors"
	"fmt"
	"net"
	"syscall"
	"time"
)

// udpConn adapts *net.UDPConn to the Conn interface — and, through the
// udpBatch state (mmsg_linux.go / mmsg_fallback.go), to BatchConn. The
// sender side is a connected socket (unicast, broadcast or multicast
// destination); the receiver side is a bound — and, for multicast
// groups, joined — socket.
type udpConn struct {
	c     *net.UDPConn
	batch udpBatch
}

// DialUDP returns a sending endpoint for addr ("host:port"). A multicast
// group address turns the endpoint into a multicast transmitter; no group
// membership is needed to send.
func DialUDP(addr string) (Conn, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	c, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q: %w", addr, err)
	}
	u := &udpConn{c: c}
	u.initBatch()
	return u, nil
}

// ListenUDP returns a receiving endpoint bound to addr ("host:port" or
// ":port"). When addr names a multicast group the socket joins it on the
// system-chosen interface, so `feccast recv` works for both unicast and
// multicast sessions with one flag.
func ListenUDP(addr string) (Conn, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	var c *net.UDPConn
	if laddr.IP != nil && laddr.IP.IsMulticast() {
		c, err = net.ListenMulticastUDP("udp", nil, laddr)
	} else {
		c, err = net.ListenUDP("udp", laddr)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	// FEC broadcasts are bursty; absorb what the scheduler hands the
	// kernel between our reads. Best effort — some systems clamp it.
	c.SetReadBuffer(8 << 20) //nolint:errcheck
	u := &udpConn{c: c}
	u.initBatch()
	return u, nil
}

func (u *udpConn) Send(datagram []byte) error {
	_, err := u.c.Write(datagram)
	// A broadcast is feedback-free: receivers join and leave at will.
	// On a connected unicast socket the kernel surfaces their absence
	// as async ICMP errors (port/host unreachable); swallowing them
	// keeps the carousel running, matching multicast semantics where no
	// such feedback exists.
	if errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EHOSTUNREACH) ||
		errors.Is(err, syscall.ENETUNREACH) {
		return nil
	}
	return err
}

func (u *udpConn) Recv(buf []byte) (int, error) {
	n, _, err := u.c.ReadFromUDP(buf)
	return n, err
}

func (u *udpConn) SetReadDeadline(t time.Time) error {
	return u.c.SetReadDeadline(t)
}

func (u *udpConn) Close() error { return u.c.Close() }

func (u *udpConn) LocalAddr() string { return u.c.LocalAddr().String() }
