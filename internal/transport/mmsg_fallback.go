//go:build !(linux && (amd64 || arm64))

package transport

import "fecperf/internal/wire"

// Portable batch datapath: platforms without sendmmsg/recvmmsg (or
// where the mmsghdr ABI here isn't vetted) satisfy the BatchConn
// contract with the per-datagram loops, so callers program against one
// API and the build tags decide how many syscalls it costs.

// udpBatch has no portable state.
type udpBatch struct{}

func (u *udpConn) initBatch() {}

// GSOEnabled reports false: UDP generic segmentation offload is a
// Linux-only socket feature.
func (u *udpConn) GSOEnabled() bool { return false }

// WriteBatch implements BatchConn with one Send per datagram.
func (u *udpConn) WriteBatch(batch []wire.Datagram) (int, error) {
	return writeBatchScalar(u, batch)
}

// ReadBatch implements BatchConn with a single Recv.
func (u *udpConn) ReadBatch(bufs []wire.Datagram) (int, error) {
	return readBatchScalar(u, bufs)
}
