package transport

import (
	"context"
	"fmt"
	"hash/crc32"
	"io"

	"fecperf/internal/core"
	"fecperf/internal/obs"
	"fecperf/internal/session"
	"fecperf/internal/wire"
)

// Caster defaults.
const (
	// DefaultChunkK is the source symbols per full chunk when
	// CasterConfig.K is zero: 256 symbols of 1024 B ≈ 256 KiB chunks.
	DefaultChunkK = 256
	// DefaultPayloadSize is the symbol size when unset.
	DefaultPayloadSize = 1024
	// DefaultWindow is how many chunks are encoded and interleaved at
	// once when CasterConfig.Window is zero.
	DefaultWindow = 4
	// DefaultGroupRounds is how many carousel rounds each window group
	// is transmitted when CasterConfig.Rounds is zero.
	DefaultGroupRounds = 2
	// DefaultRatio is the FEC expansion ratio when unset.
	DefaultRatio = 1.5
)

// CasterConfig tunes a streaming cast.
type CasterConfig struct {
	// BaseObjectID is the train's base ID: the trailing manifest rides
	// at BaseObjectID, chunk i at BaseObjectID+1+i (session.TrainChunkID).
	BaseObjectID uint32
	// Family selects the chunks' FEC code (default Reed-Solomon GF(2^8);
	// the manifest always ships as Reed-Solomon — every datagram is
	// self-describing, so the families mix freely on one train).
	Family wire.CodeFamily
	// K is the source symbols per full chunk (default DefaultChunkK).
	// With PayloadSize it fixes the chunk size:
	// session.ChunkDataSize(K, PayloadSize) stream bytes per chunk.
	K int
	// Ratio is the FEC expansion ratio n/k per chunk (default 1.5).
	Ratio float64
	// PayloadSize is the symbol size in bytes (default 1024).
	PayloadSize int
	// Seed fixes code construction and scheduling randomness.
	Seed int64
	// Scheduler orders each round's packets (default Tx_model_4).
	Scheduler core.Scheduler
	// Rate limits transmission in packets per second (0 = unpaced);
	// Burst is the token-bucket depth.
	Rate  float64
	Burst int
	// Pacer, when set, replaces the per-group senders' built-in token
	// buckets with an external admission source (Rate and Burst are then
	// ignored) — see SenderConfig.Pacer. The daemon paces streaming
	// casts through a SharedPacer share this way.
	Pacer Pacer
	// BatchSize vectorizes the group senders' round loops — see
	// SenderConfig.BatchSize. 0 or 1 keeps the scalar path.
	BatchSize int
	// Window bounds how many chunks are FEC-encoded and resident at
	// once (default DefaultWindow) — the sender-side memory bound and
	// the backpressure on the source reader: reading pauses while a
	// full window is on the air.
	Window int
	// Rounds is the carousel rounds each window group is transmitted
	// before the caster advances to the next chunks (default 2). More
	// rounds buy loss resilience at the price of throughput.
	Rounds int
	// OnProgress, when set, is called after every transmitted window
	// group and once more when the cast completes.
	OnProgress func(CastProgress)
	// Metrics, when set, exposes the cast's aggregate counters on the
	// registry (caster_* series). The per-group inner senders stay
	// unregistered — their stats fold into the caster's totals.
	Metrics *obs.Registry
	// Tracer, when set, records enqueue events as chunks are encoded
	// and first_tx events as each chunk first hits the Conn.
	Tracer *obs.Tracer
}

// CastProgress describes a running cast.
type CastProgress struct {
	// ChunksCast counts chunks whose transmission window has completed.
	ChunksCast int
	// BytesRead counts source-stream bytes consumed so far.
	BytesRead int64
	// Done is set on the final callback, after the manifest went out.
	Done bool
}

// CasterStats is a point-in-time snapshot of cast counters.
type CasterStats struct {
	// PacketsSent and BytesSent count datagrams handed to the Conn.
	PacketsSent uint64
	BytesSent   uint64
	// ChunksCast counts fully transmitted chunks.
	ChunksCast uint64
	// BytesRead counts source-stream bytes consumed.
	BytesRead uint64
	// PacerWaitNS counts nanoseconds the cast's senders spent blocked in
	// the rate limiter.
	PacerWaitNS uint64
}

// Caster streams a byte source of arbitrary (and unknown) length over a
// Conn as a train of FEC-encoded delivery objects: the stream is cut
// into chunks of K symbols, each chunk is encoded and transmitted for a
// bounded number of interleaved carousel rounds alongside its window
// neighbours, and a small trailing manifest (chunk count, total size,
// stream CRC) seals the train. Peak memory is the window, not the
// stream: at most Window encoded chunks (plus the manifest) are
// resident at any moment, so objects far larger than RAM cast in O(1)
// space.
//
// The receiving side is Collector, which reassembles completed chunks
// in order into an io.Writer. Chunk object IDs are sequential
// (session.TrainChunkID), so a collector orders chunks before the
// manifest arrives; the manifest — which a streaming sender can only
// write after reading the last source byte — tells it when the train
// is done and lets it verify the whole stream end to end.
//
// Run may be called once; Stats is safe concurrently with Run.
type Caster struct {
	conn Conn
	src  io.Reader
	cfg  CasterConfig

	packets   obs.Counter
	bytes     obs.Counter
	chunks    obs.Counter
	read      obs.Counter
	pacerWait obs.Counter
	window    obs.Gauge // chunks resident in the current window

	manifest session.Manifest
	ran      bool
}

// NewCaster returns a caster reading from src and writing datagrams to
// conn. Configuration errors surface here, not mid-stream.
func NewCaster(conn Conn, src io.Reader, cfg CasterConfig) (*Caster, error) {
	if cfg.Family == wire.CodeInvalid {
		cfg.Family = wire.CodeRSE
	}
	if cfg.K == 0 {
		cfg.K = DefaultChunkK
	}
	if cfg.PayloadSize == 0 {
		cfg.PayloadSize = DefaultPayloadSize
	}
	if cfg.Ratio == 0 {
		cfg.Ratio = DefaultRatio
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = DefaultGroupRounds
	}
	if cfg.K < 0 || cfg.PayloadSize < 0 || cfg.Window < 0 || cfg.Rounds < 0 {
		return nil, fmt.Errorf("transport: caster config has negative parameters")
	}
	if session.ChunkDataSize(cfg.K, cfg.PayloadSize) <= 0 {
		return nil, fmt.Errorf("transport: chunk of k=%d × %d B payloads leaves no room for data",
			cfg.K, cfg.PayloadSize)
	}
	if cfg.Ratio < 1 {
		return nil, fmt.Errorf("transport: FEC expansion ratio %g below 1", cfg.Ratio)
	}
	c := &Caster{conn: conn, src: src, cfg: cfg}
	if r := cfg.Metrics; r != nil {
		r.CounterFunc("caster_packets_total", "Datagrams handed to the conn.", nil, c.packets.Load)
		r.CounterFunc("caster_bytes_total", "Datagram bytes handed to the conn.", nil, c.bytes.Load)
		r.CounterFunc("caster_chunks_total", "Fully transmitted chunks.", nil, c.chunks.Load)
		r.CounterFunc("caster_bytes_read_total", "Source-stream bytes consumed.", nil, c.read.Load)
		r.CounterFunc("caster_pacer_wait_ns_total", "Nanoseconds the cast's senders blocked in the rate limiter.", nil, c.pacerWait.Load)
		r.GaugeFunc("caster_window_chunks", "Encoded chunks resident in the current window.", nil, c.window.Load)
	}
	return c, nil
}

// Run reads the source to EOF, casting it window by window, then seals
// the train with the manifest. It returns the first read, encode or
// send error; cancelling ctx stops between packets with ctx.Err().
func (c *Caster) Run(ctx context.Context) error {
	if c.ran {
		return fmt.Errorf("transport: caster Run called twice")
	}
	c.ran = true

	chunkData := session.ChunkDataSize(c.cfg.K, c.cfg.PayloadSize)
	buf := make([]byte, chunkData)
	crc := crc32.NewIEEE()
	var total uint64
	var window []*session.Object
	idx, group := 0, 0

	flush := func(final bool) error {
		if final {
			c.manifest = session.Manifest{
				ChunkCount: uint32(idx),
				ChunkSize:  uint32(chunkData),
				TotalSize:  total,
				StreamCRC:  crc.Sum32(),
			}
			m, err := session.EncodeObject(c.manifest.Encode(), session.SenderConfig{
				ObjectID: c.cfg.BaseObjectID,
				Family:   wire.CodeRSE,
				Ratio:    2, // the manifest is one symbol; always send a spare
				// The manifest is tiny; its own symbol, not the chunks'
				// (possibly large) one, keeps the padding negligible.
				PayloadSize: session.ManifestLen + 8,
				Seed:        c.cfg.Seed,
			})
			if err != nil {
				return fmt.Errorf("transport: encoding manifest: %w", err)
			}
			window = append(window, m)
		}
		if len(window) == 0 {
			return nil
		}
		chunksInGroup := len(window)
		if final {
			chunksInGroup--
		}
		s := NewSender(c.conn, SenderConfig{
			Rate:      c.cfg.Rate,
			Burst:     c.cfg.Burst,
			Pacer:     c.cfg.Pacer,
			BatchSize: c.cfg.BatchSize,
			Rounds:    c.cfg.Rounds,
			Scheduler: c.cfg.Scheduler,
			// Every group draws fresh schedules: the sender reseeds per
			// (round, object), so distinct group seeds keep rounds from
			// repeating the same erasure-aligned order.
			Seed: core.DeriveSeed(c.cfg.Seed, 0xCA57, uint64(group)),
			// No Metrics: the group senders are throwaway; their stats
			// fold into the caster's registered aggregates below.
			Tracer: c.cfg.Tracer,
		})
		for _, o := range window {
			if err := s.Add(o); err != nil {
				s.Close()
				window = nil
				return err
			}
		}
		err := s.Run(ctx)
		st := s.Stats()
		c.packets.Add(st.PacketsSent)
		c.bytes.Add(st.BytesSent)
		c.pacerWait.Add(st.PacerWaitNS)
		s.Close() // releases the window's pooled symbol buffers
		window = nil
		c.window.Set(0)
		if err != nil {
			return err
		}
		c.chunks.Add(uint64(chunksInGroup))
		group++
		if c.cfg.OnProgress != nil {
			c.cfg.OnProgress(CastProgress{
				ChunksCast: int(c.chunks.Load()),
				BytesRead:  int64(c.read.Load()),
				Done:       final,
			})
		}
		return nil
	}

	for {
		// Each group's sender gets a fresh token bucket, so a cast whose
		// groups fit inside the burst would never block in the pacer;
		// check cancellation explicitly between chunks.
		if err := ctx.Err(); err != nil {
			for _, o := range window {
				o.Close()
			}
			return err
		}
		n, err := io.ReadFull(c.src, buf)
		if n > 0 {
			crc.Write(buf[:n])
			total += uint64(n)
			c.read.Add(uint64(n))
			obj, encErr := session.EncodeObject(buf[:n], session.SenderConfig{
				ObjectID:    session.TrainChunkID(c.cfg.BaseObjectID, idx),
				Family:      c.cfg.Family,
				Ratio:       c.cfg.Ratio,
				PayloadSize: c.cfg.PayloadSize,
				Seed:        c.cfg.Seed,
			})
			if encErr != nil {
				flushErr := fmt.Errorf("transport: encoding chunk %d: %w", idx, encErr)
				for _, o := range window {
					o.Close()
				}
				return flushErr
			}
			idx++
			window = append(window, obj)
			c.window.Set(int64(len(window)))
			if tr := c.cfg.Tracer; tr != nil {
				tr.Emit(obs.Event{
					Event:  obs.TraceEnqueue,
					Object: obj.ObjectID(),
					Chunk:  idx - 1,
					K:      obj.K(),
					N:      obj.N(),
					Bytes:  int64(n),
				})
			}
		}
		switch err {
		case nil:
		case io.EOF, io.ErrUnexpectedEOF:
			return flush(true)
		default:
			for _, o := range window {
				o.Close()
			}
			return fmt.Errorf("transport: reading source: %w", err)
		}
		if len(window) >= c.cfg.Window {
			if err := flush(false); err != nil {
				return err
			}
		}
	}
}

// Manifest returns the train manifest Run sealed the cast with; ok is
// false until Run has read the source to EOF.
func (c *Caster) Manifest() (m session.Manifest, ok bool) {
	if !c.ran || c.manifest.ChunkSize == 0 {
		return session.Manifest{}, false
	}
	return c.manifest, true
}

// Stats returns a snapshot of the caster's counters.
func (c *Caster) Stats() CasterStats {
	return CasterStats{
		PacketsSent: c.packets.Load(),
		BytesSent:   c.bytes.Load(),
		ChunksCast:  c.chunks.Load(),
		BytesRead:   c.read.Load(),
		PacerWaitNS: c.pacerWait.Load(),
	}
}
