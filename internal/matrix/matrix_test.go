package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fecperf/internal/gf256"
)

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := byte(0)
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity[%d][%d] = %d", i, j, id.At(i, j))
			}
		}
	}
}

func TestNewInvalidDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 3) did not panic")
		}
	}()
	New(0, 3)
}

func TestVandermondeFirstColumnOnes(t *testing.T) {
	v := Vandermonde(10, 5)
	for i := 0; i < 10; i++ {
		if v.At(i, 0) != 1 {
			t.Fatalf("V[%d][0] = %d, want 1", i, v.At(i, 0))
		}
	}
}

func TestVandermondeDistinctGenerators(t *testing.T) {
	v := Vandermonde(20, 3)
	seen := map[byte]bool{}
	for i := 0; i < 20; i++ {
		x := v.At(i, 1)
		if seen[x] {
			t.Fatalf("duplicate generator %d at row %d", x, i)
		}
		seen[x] = true
	}
}

func TestVandermondeRowsAreGeometric(t *testing.T) {
	v := Vandermonde(8, 6)
	for i := 0; i < 8; i++ {
		x := v.At(i, 1)
		for j := 1; j < 6; j++ {
			if want := gf256.Pow(x, j); v.At(i, j) != want {
				t.Fatalf("V[%d][%d] = %d, want %d", i, j, v.At(i, j), want)
			}
		}
	}
}

func TestVandermondeTooManyRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Vandermonde(256, 2) did not panic")
		}
	}()
	Vandermonde(256, 2)
}

func TestIdentityInverse(t *testing.T) {
	id := Identity(5)
	inv, err := id.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Equal(id) {
		t.Fatal("Identity inverse is not identity")
	}
}

func randomInvertible(rng *rand.Rand, n int) *Matrix {
	for {
		m := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, byte(rng.Intn(256)))
			}
		}
		if _, err := m.Inverse(); err == nil {
			return m
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(12)
		m := randomInvertible(rng, n)
		inv, err := m.Inverse()
		if err != nil {
			t.Fatal(err)
		}
		if prod := m.Mul(inv); !prod.Equal(Identity(n)) {
			t.Fatalf("m × m^-1 != I for n=%d:\n%v", n, prod)
		}
		if prod := inv.Mul(m); !prod.Equal(Identity(n)) {
			t.Fatalf("m^-1 × m != I for n=%d", n)
		}
	}
}

func TestSingularDetected(t *testing.T) {
	m := New(3, 3)
	// Row 2 = row 0 ^ row 1 (linearly dependent over GF(2^8)).
	vals := [][]byte{{1, 2, 3}, {4, 5, 6}, {1 ^ 4, 2 ^ 5, 3 ^ 6}}
	for i, row := range vals {
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	if _, err := m.Inverse(); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestZeroMatrixSingular(t *testing.T) {
	if _, err := New(4, 4).Inverse(); err != ErrSingular {
		t.Fatalf("zero matrix inverse: got %v, want ErrSingular", err)
	}
}

func TestAnySquareVandermondeSubmatrixInvertible(t *testing.T) {
	// The MDS property of the RS construction: any k rows of a Vandermonde
	// matrix with distinct generators form an invertible k×k matrix.
	rng := rand.New(rand.NewSource(2))
	const k = 8
	v := Vandermonde(40, k)
	for trial := 0; trial < 50; trial++ {
		idx := rng.Perm(40)[:k]
		sub := v.SubMatrix(idx)
		if _, err := sub.Inverse(); err != nil {
			t.Fatalf("Vandermonde submatrix rows %v singular: %v", idx, err)
		}
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(4, 6)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			m.Set(i, j, byte(rng.Intn(256)))
		}
	}
	const symLen = 9
	src := make([][]byte, 6)
	col := New(6, symLen)
	for j := range src {
		src[j] = col.Row(j)
		for s := 0; s < symLen; s++ {
			src[j][s] = byte(rng.Intn(256))
		}
	}
	dst := make([][]byte, 4)
	for i := range dst {
		dst[i] = make([]byte, symLen)
	}
	m.MulVec(dst, src)
	want := m.Mul(col)
	for i := 0; i < 4; i++ {
		for s := 0; s < symLen; s++ {
			if dst[i][s] != want.At(i, s) {
				t.Fatalf("MulVec mismatch at [%d][%d]", i, s)
			}
		}
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with mismatched dims did not panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestInverseNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inverse of non-square did not panic")
		}
	}()
	New(2, 3).Inverse() //nolint:errcheck
}

func TestCloneIsDeep(t *testing.T) {
	m := Identity(3)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestSubMatrixOrderPreserved(t *testing.T) {
	v := Vandermonde(10, 4)
	s := v.SubMatrix([]int{7, 2, 9})
	for j := 0; j < 4; j++ {
		if s.At(0, j) != v.At(7, j) || s.At(1, j) != v.At(2, j) || s.At(2, j) != v.At(9, j) {
			t.Fatal("SubMatrix rows out of order")
		}
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomDense(r, 3, 4), randomDense(r, 4, 2), randomDense(r, 2, 5)
		_ = rng
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func randomDense(r *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, byte(r.Intn(256)))
		}
	}
	return m
}

func BenchmarkInverse64(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m := randomInvertible(rng, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Inverse(); err != nil {
			b.Fatal(err)
		}
	}
}
