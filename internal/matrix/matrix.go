// Package matrix implements dense matrices over GF(2^8).
//
// It provides exactly what a Vandermonde-based Reed-Solomon erasure codec
// needs: matrix construction, multiplication against vectors of symbol
// slices, and Gauss-Jordan inversion. Matrices are small (at most 256×256,
// the field-imposed Reed-Solomon limit), so a dense row-major layout is both
// the simplest and the fastest representation.
package matrix

import (
	"errors"
	"fmt"

	"fecperf/internal/gf256"
	"fecperf/internal/symbol"
)

// ErrSingular is returned when attempting to invert a singular matrix.
var ErrSingular = errors.New("matrix: singular")

// Matrix is a dense rows×cols matrix over GF(2^8), stored row-major.
type Matrix struct {
	rows, cols int
	data       []byte
}

// New returns a zero rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

// NewPooled returns a zero rows×cols matrix whose storage comes from the
// symbol pool — decode scratch that hot paths borrow and Release instead
// of allocating. The largest Reed-Solomon geometry (255×255) fits the
// pool's top size class, so these never fall back to the allocator.
// Returned by value so the header can live on the caller's stack.
func NewPooled(rows, cols int) Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	return Matrix{rows: rows, cols: cols, data: symbol.Get(rows * cols)}
}

// Release returns a pooled matrix's storage to the symbol pool and
// leaves the matrix unusable. Safe to call on non-pooled matrices (the
// pool rejects foreign buffers) and idempotent.
func (m *Matrix) Release() {
	if m.data != nil {
		symbol.Put(m.data)
		m.data = nil
	}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde returns the rows×cols matrix V with V[i][j] = alpha_i^j where
// alpha_i is the i-th distinct non-zero field element (alpha^i). Any `cols`
// rows of such a matrix are linearly independent as long as rows <= 255,
// which is what makes the derived Reed-Solomon code MDS.
func Vandermonde(rows, cols int) *Matrix {
	if rows > gf256.Size-1 {
		panic(fmt.Sprintf("matrix: Vandermonde rows %d exceeds field limit %d", rows, gf256.Size-1))
	}
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		x := gf256.Exp(i)
		for j := 0; j < cols; j++ {
			m.Set(i, j, gf256.Pow(x, j))
		}
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) byte { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v byte) { m.data[i*m.cols+j] = v }

// Row returns a view of row i (not a copy).
func (m *Matrix) Row(i int) []byte { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// SubMatrix returns a copy of the rows of m selected by rowIdx, in order.
func (m *Matrix) SubMatrix(rowIdx []int) *Matrix {
	s := New(len(rowIdx), m.cols)
	for i, r := range rowIdx {
		copy(s.Row(i), m.Row(r))
	}
	return s
}

// Mul returns m × other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.cols != other.rows {
		panic(fmt.Sprintf("matrix: Mul dimension mismatch %dx%d × %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	out := New(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		ri := m.Row(i)
		ro := out.Row(i)
		for t := 0; t < m.cols; t++ {
			if c := ri[t]; c != 0 {
				gf256.AddMul(ro, other.Row(t), c)
			}
		}
	}
	return out
}

// MulVec computes dst = m × src where src is a vector of symbol slices
// (one per matrix column) and dst one per matrix row. Every slice must
// have the same length. dst slices are overwritten. The hot loop is
// row-blocked (gf256.AddMul4): each source symbol is read once per group
// of four output rows, which is what makes the Reed-Solomon payload
// paths fast.
func (m *Matrix) MulVec(dst, src [][]byte) {
	if len(src) != m.cols || len(dst) != m.rows {
		panic("matrix: MulVec dimension mismatch")
	}
	for _, d := range dst {
		for t := range d {
			d[t] = 0
		}
	}
	i := 0
	for ; i+4 <= m.rows; i += 4 {
		r0, r1, r2, r3 := m.Row(i), m.Row(i+1), m.Row(i+2), m.Row(i+3)
		d0, d1, d2, d3 := dst[i], dst[i+1], dst[i+2], dst[i+3]
		for j, s := range src {
			gf256.AddMul4(d0, d1, d2, d3, s, r0[j], r1[j], r2[j], r3[j])
		}
	}
	if i+2 <= m.rows {
		r0, r1 := m.Row(i), m.Row(i+1)
		d0, d1 := dst[i], dst[i+1]
		for j, s := range src {
			gf256.AddMul2(d0, d1, s, r0[j], r1[j])
		}
		i += 2
	}
	if i < m.rows {
		row, d := m.Row(i), dst[i]
		for j, c := range row {
			if c != 0 {
				gf256.AddMul(d, src[j], c)
			}
		}
	}
}

// Inverse returns m^-1 computed by Gauss-Jordan elimination with partial
// pivoting (any non-zero pivot works in a field). It returns ErrSingular if
// m is not invertible and panics if m is not square.
func (m *Matrix) Inverse() (*Matrix, error) {
	a := m.Clone()
	inv := New(m.rows, m.cols)
	if err := a.InvertTo(inv); err != nil {
		return nil, err
	}
	return inv, nil
}

// InvertTo computes m^-1 into dst without allocating: m itself is the
// elimination workspace (reduced to the identity on success, garbage on
// failure) and dst — which must share m's square shape — is overwritten
// starting from the identity. Decode paths pair it with NewPooled
// scratch so a block inversion touches the allocator zero times.
func (m *Matrix) InvertTo(dst *Matrix) error {
	if m.rows != m.cols {
		panic("matrix: Inverse of non-square matrix")
	}
	if dst.rows != m.rows || dst.cols != m.cols {
		panic(fmt.Sprintf("matrix: InvertTo into %dx%d, want %dx%d", dst.rows, dst.cols, m.rows, m.cols))
	}
	n := m.rows
	clear(dst.data)
	for i := 0; i < n; i++ {
		dst.Set(i, i, 1)
	}
	for col := 0; col < n; col++ {
		// Find a pivot at or below the diagonal.
		pivot := -1
		for r := col; r < n; r++ {
			if m.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return ErrSingular
		}
		if pivot != col {
			m.swapRows(pivot, col)
			dst.swapRows(pivot, col)
		}
		// Scale the pivot row so the pivot becomes 1.
		if p := m.At(col, col); p != 1 {
			ip := gf256.Inv(p)
			gf256.MulSlice(m.Row(col), m.Row(col), ip)
			gf256.MulSlice(dst.Row(col), dst.Row(col), ip)
		}
		// Eliminate the column everywhere else.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if c := m.At(r, col); c != 0 {
				gf256.AddMul(m.Row(r), m.Row(col), c)
				gf256.AddMul(dst.Row(r), dst.Row(col), c)
			}
		}
	}
	return nil
}

func (m *Matrix) swapRows(i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for t := range ri {
		ri[t], rj[t] = rj[t], ri[t]
	}
}

// Equal reports whether m and other have identical shape and contents.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, v := range m.data {
		if v != other.data[i] {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("matrix %dx%d\n", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		s += fmt.Sprintf("%v\n", m.Row(i))
	}
	return s
}
