package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Var() != 0 || a.StdDev() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Fatal("zero value not all-zero")
	}
}

func TestSingleSample(t *testing.T) {
	var a Accumulator
	a.Add(5)
	if a.N() != 1 || a.Mean() != 5 || a.Min() != 5 || a.Max() != 5 || a.Var() != 0 {
		t.Fatalf("got n=%d mean=%g min=%g max=%g var=%g", a.N(), a.Mean(), a.Min(), a.Max(), a.Var())
	}
}

func TestKnownValues(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.Mean() != 5 {
		t.Fatalf("mean %g, want 5", a.Mean())
	}
	// Unbiased variance of that classic dataset is 32/7.
	if want := 32.0 / 7.0; math.Abs(a.Var()-want) > 1e-12 {
		t.Fatalf("var %g, want %g", a.Var(), want)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max %g/%g", a.Min(), a.Max())
	}
}

func TestNegativeValues(t *testing.T) {
	var a Accumulator
	a.Add(-3)
	a.Add(3)
	if a.Mean() != 0 || a.Min() != -3 || a.Max() != 3 {
		t.Fatalf("mean=%g min=%g max=%g", a.Mean(), a.Min(), a.Max())
	}
}

func TestMatchesNaiveComputation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%100)
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		var a Accumulator
		sum := 0.0
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			a.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var ss float64
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
		naiveVar := ss / float64(n-1)
		return math.Abs(a.Mean()-mean) < 1e-9 &&
			math.Abs(a.Var()-naiveVar) < 1e-9 &&
			a.Min() == mn && a.Max() == mx && a.N() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
