package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Var() != 0 || a.StdDev() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Fatal("zero value not all-zero")
	}
}

func TestSingleSample(t *testing.T) {
	var a Accumulator
	a.Add(5)
	if a.N() != 1 || a.Mean() != 5 || a.Min() != 5 || a.Max() != 5 || a.Var() != 0 {
		t.Fatalf("got n=%d mean=%g min=%g max=%g var=%g", a.N(), a.Mean(), a.Min(), a.Max(), a.Var())
	}
}

func TestKnownValues(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.Mean() != 5 {
		t.Fatalf("mean %g, want 5", a.Mean())
	}
	// Unbiased variance of that classic dataset is 32/7.
	if want := 32.0 / 7.0; math.Abs(a.Var()-want) > 1e-12 {
		t.Fatalf("var %g, want %g", a.Var(), want)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max %g/%g", a.Min(), a.Max())
	}
}

func TestNegativeValues(t *testing.T) {
	var a Accumulator
	a.Add(-3)
	a.Add(3)
	if a.Mean() != 0 || a.Min() != -3 || a.Max() != 3 {
		t.Fatalf("mean=%g min=%g max=%g", a.Mean(), a.Min(), a.Max())
	}
}

func TestMergeMatchesSingleStream(t *testing.T) {
	f := func(seed int64, nRaw uint8, splitRaw uint8) bool {
		n := 2 + int(nRaw%200)
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		var whole Accumulator
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 3
			whole.Add(xs[i])
		}
		split := 1 + int(splitRaw)%(n-1)
		var left, right Accumulator
		for _, x := range xs[:split] {
			left.Add(x)
		}
		for _, x := range xs[split:] {
			right.Add(x)
		}
		left.Merge(right)
		return left.N() == whole.N() &&
			math.Abs(left.Mean()-whole.Mean()) < 1e-9 &&
			math.Abs(left.Var()-whole.Var()) < 1e-9 &&
			left.Min() == whole.Min() && left.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEmptySides(t *testing.T) {
	var a, empty Accumulator
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(empty)
	if a != before {
		t.Fatal("merging an empty accumulator changed the receiver")
	}
	var b Accumulator
	b.Merge(before)
	if b != before {
		t.Fatalf("merging into empty: got %+v, want %+v", b, before)
	}
}

func TestMergeManyShardsDeterministic(t *testing.T) {
	// Merging the same shards in the same order must be bit-identical,
	// whatever goroutine computed them: merge is a pure function.
	rng := rand.New(rand.NewSource(7))
	shards := make([]Accumulator, 9)
	for i := range shards {
		for j := 0; j < 10+i; j++ {
			shards[i].Add(rng.Float64() * 100)
		}
	}
	var m1, m2 Accumulator
	for _, s := range shards {
		m1.Merge(s)
	}
	for _, s := range shards {
		m2.Merge(s)
	}
	if m1 != m2 {
		t.Fatal("identical merge sequences produced different accumulators")
	}
}

func TestJSONRoundTripExact(t *testing.T) {
	var a Accumulator
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 57; i++ {
		a.Add(rng.NormFloat64() * 1e3)
	}
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Accumulator
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != a {
		t.Fatalf("round-trip not exact: %+v vs %+v", back, a)
	}
	// A decoded accumulator must still accept further samples.
	back.Add(1)
	if back.N() != a.N()+1 {
		t.Fatal("decoded accumulator cannot accumulate")
	}
}

func TestMatchesNaiveComputation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%100)
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		var a Accumulator
		sum := 0.0
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			a.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var ss float64
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
		naiveVar := ss / float64(n-1)
		return math.Abs(a.Mean()-mean) < 1e-9 &&
			math.Abs(a.Var()-naiveVar) < 1e-9 &&
			a.Min() == mn && a.Max() == mx && a.N() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
