// Package stats provides the small statistical accumulators used by the
// simulation harness: streaming mean/variance (Welford) and min/max
// tracking. Kept separate so both the sweep engine and the CLI tools can
// aggregate without duplicating numerics.
package stats

import (
	"encoding/json"
	"math"
)

// Accumulator tracks count, mean, variance, min and max of a stream of
// float64 samples in O(1) memory. The zero value is ready to use.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add inserts one sample.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// Merge folds another accumulator into a, as if every sample of b had
// been Added to a. It uses the pairwise combination of Chan, Golub and
// LeVeque (1979), which keeps the variance update numerically stable, so
// per-worker partial aggregates combine into the same moments a single
// stream would produce (up to floating-point rounding of the merge tree).
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.mean += d * float64(b.n) / float64(n)
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.n = n
}

// N returns the number of samples.
func (a Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 with no samples).
func (a Accumulator) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (a Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a Accumulator) StdDev() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest sample (0 with no samples).
func (a Accumulator) Min() float64 { return a.min }

// Max returns the largest sample (0 with no samples).
func (a Accumulator) Max() float64 { return a.max }

// accumulatorJSON is the wire form of an Accumulator. The raw moments
// (not derived statistics) are serialised so a decoded accumulator can
// keep accepting Add and Merge; encoding/json prints float64 values with
// the shortest representation that round-trips exactly, so checkpointed
// aggregates resume bit-identical.
type accumulatorJSON struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// MarshalJSON implements json.Marshaler.
func (a Accumulator) MarshalJSON() ([]byte, error) {
	return json.Marshal(accumulatorJSON{N: a.n, Mean: a.mean, M2: a.m2, Min: a.min, Max: a.max})
}

// UnmarshalJSON implements json.Unmarshaler.
func (a *Accumulator) UnmarshalJSON(data []byte) error {
	var w accumulatorJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	a.n, a.mean, a.m2, a.min, a.max = w.N, w.Mean, w.M2, w.Min, w.Max
	return nil
}
