// Package stats provides the small statistical accumulators used by the
// simulation harness: streaming mean/variance (Welford) and min/max
// tracking. Kept separate so both the sweep engine and the CLI tools can
// aggregate without duplicating numerics.
package stats

import "math"

// Accumulator tracks count, mean, variance, min and max of a stream of
// float64 samples in O(1) memory. The zero value is ready to use.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add inserts one sample.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples.
func (a Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 with no samples).
func (a Accumulator) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (a Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a Accumulator) StdDev() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest sample (0 with no samples).
func (a Accumulator) Min() float64 { return a.min }

// Max returns the largest sample (0 with no samples).
func (a Accumulator) Max() float64 { return a.max }
