package fecperf

// Streaming large-object delivery: Caster cuts a byte source of any
// size into a train of FEC-encoded delivery objects and drives the
// broadcast carousel with backpressure (a bounded window of encoded
// chunks); Collector reassembles completed chunks in order into an
// io.Writer, closing the train on its trailing manifest with an
// end-to-end length and CRC check. Single in-memory objects use
// NewObject / NewDeliveryReceiver; the round-robin carousel over
// whole objects is NewBroadcaster / NewReceiverDaemon.

import (
	"io"

	"fecperf/internal/channel"
	"fecperf/internal/session"
	"fecperf/internal/transport"
	"fecperf/internal/wire"
)

// Streaming delivery types, re-exported.
type (
	// Caster streams an io.Reader of arbitrary size as a chunked,
	// FEC-encoded object train with bounded memory.
	Caster = transport.Caster
	// CastProgress describes a running cast.
	CastProgress = transport.CastProgress
	// CasterStats is a snapshot of cast counters.
	CasterStats = transport.CasterStats
	// Collector reassembles a cast train in order into an io.Writer.
	Collector = transport.Collector
	// CollectorStats is a snapshot of collect counters (the collector's
	// own reassembly progress plus its daemon's packet counters).
	CollectorStats = transport.CollectorStats
	// CollectProgress describes a running collect.
	CollectProgress = transport.CollectProgress
	// TrainManifest seals a chunked train: chunk count and size, total
	// bytes, and the whole-stream CRC.
	TrainManifest = session.Manifest
)

// NewCaster returns a caster streaming src over conn, configured by
// options or a one-line spec:
//
//	fecperf.NewCaster(conn, file,
//	    fecperf.WithSpec("codec=rse(k=256,ratio=1.5),sched=tx4,rate=5000,object=7"))
//
// The codec spec's k and the payload size fix the chunk geometry; the
// window bounds resident memory (the source is read as the carousel
// drains, never ahead of it). Drive the transfer with the caster's Run.
func NewCaster(conn TransportConn, src io.Reader, opts ...Option) (*Caster, error) {
	c, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	family, err := castFamily(c.Codec)
	if err != nil {
		return nil, err
	}
	return transport.NewCaster(conn, src, transport.CasterConfig{
		BaseObjectID: c.BaseObjectID,
		Family:       family,
		K:            c.Codec.K,
		Ratio:        c.resolvedRatio(),
		PayloadSize:  c.PayloadSize,
		Seed:         c.codecSeed(),
		Scheduler:    c.Scheduler,
		Rate:         c.Rate,
		Burst:        c.Burst,
		Pacer:        c.Pacer,
		BatchSize:    c.BatchSize,
		Window:       c.Window,
		Rounds:       c.Rounds,
		OnProgress:   c.OnCastProgress,
		Metrics:      c.Metrics,
		Tracer:       c.Tracer,
	})
}

// NewCollector returns a collector reassembling the train cast at the
// configured base object ID from conn into dst, verifying stream
// length and CRC before its Run reports success. The relevant options:
// WithBaseObjectID (must match the caster), WithMaxPending,
// WithPayloadSize (sizes the read buffer), WithCollectProgress.
func NewCollector(conn TransportConn, dst io.Writer, opts ...Option) (*Collector, error) {
	c, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	mtu := 0
	if c.PayloadSize != 0 {
		mtu = c.PayloadSize + wire.HeaderLen
	}
	return transport.NewCollector(conn, dst, transport.CollectorConfig{
		BaseObjectID: c.BaseObjectID,
		MaxPending:   c.MaxPending,
		MTU:          mtu,
		ReadBatch:    c.BatchSize,
		OnProgress:   c.OnCollectProgress,
		Metrics:      c.Metrics,
		Tracer:       c.Tracer,
	}), nil
}

// castFamily maps a codec spec to its wire family, defaulting to
// Reed-Solomon GF(2^8).
func castFamily(s CodecSpec) (wire.CodeFamily, error) {
	if s.Family == "" {
		return wire.CodeRSE, nil
	}
	return s.WireFamily()
}

// --- Single-object delivery session ---

// Delivery-session types, re-exported.
type (
	// DeliveryConfig is the session-level sender configuration behind
	// NewObject (the facade assembles it from a Config).
	DeliveryConfig = session.SenderConfig
	// DeliveryObject is an encoded object ready for transmission.
	DeliveryObject = session.Object
	// DeliveryReceiver reconstructs objects from datagrams.
	DeliveryReceiver = session.Receiver
	// WirePacket is the parsed datagram format.
	WirePacket = wire.Packet
	// WireCodeFamily identifies the FEC code on the wire.
	WireCodeFamily = wire.CodeFamily
)

// Wire code family values.
const (
	WireRSE           = wire.CodeRSE
	WireLDGM          = wire.CodeLDGM
	WireLDGMStaircase = wire.CodeLDGMStaircase
	WireLDGMTriangle  = wire.CodeLDGMTriangle
	WireRSE16         = wire.CodeRSE16
	WireNoFEC         = wire.CodeNoFEC
)

// NewObject FEC-encodes one in-memory byte object for datagram
// transmission — the single-object form of a cast:
//
//	obj, err := fecperf.NewObject(data,
//	    fecperf.WithSpec("codec=ldgm-staircase(k=1000,ratio=2.5,seed=7),object=3,payload=1024"))
//
// The codec spec's k is ignored here: the object's size and the payload
// size fix it. Close the object when it will not be transmitted again.
func NewObject(data []byte, opts ...Option) (*DeliveryObject, error) {
	c, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	family, err := castFamily(c.Codec)
	if err != nil {
		return nil, err
	}
	payload := c.PayloadSize
	if payload == 0 {
		payload = transport.DefaultPayloadSize
	}
	ratio := c.resolvedRatio()
	return session.EncodeObject(data, session.SenderConfig{
		ObjectID:    c.BaseObjectID,
		Family:      family,
		Ratio:       ratio,
		PayloadSize: payload,
		Seed:        c.codecSeed(),
		Scheduler:   c.Scheduler,
		NSent:       c.NSent,
	})
}

// NewDeliveryReceiver returns a receiver that reconstructs objects from
// datagrams in any order.
func NewDeliveryReceiver() *DeliveryReceiver { return session.NewReceiver() }

// DecodeWirePacket parses one datagram without feeding a receiver (useful
// for inspection and filtering).
func DecodeWirePacket(datagram []byte) (*WirePacket, error) { return wire.Decode(datagram) }

// --- Whole-object carousel ---

// Carousel transport types, re-exported.
type (
	// Broadcaster streams encoded objects as a rate-limited carousel.
	Broadcaster = transport.Sender
	// BroadcasterConfig tunes the carousel (rate, rounds, scheduler).
	BroadcasterConfig = transport.SenderConfig
	// BroadcasterStats is a snapshot of sender counters.
	BroadcasterStats = transport.SenderStats
	// ReceiverDaemon demultiplexes datagrams into decoded objects with
	// bounded memory.
	ReceiverDaemon = transport.ReceiverDaemon
	// ReceiverDaemonConfig tunes the daemon's bounds and callbacks.
	ReceiverDaemonConfig = transport.ReceiverConfig
	// ReceiverStats is a snapshot of daemon counters.
	ReceiverStats = transport.Stats
)

// NewBroadcaster returns a carousel sender writing to conn; Add encoded
// objects (NewObject) before Run. The carousel encodes datagrams
// lazily from the objects' pooled symbol buffers — nothing is held
// pre-encoded — so added objects must stay open while the carousel
// runs. Call the sender's Close when done: it blocks until an
// in-flight Run returns (cancel its context first), then releases the
// objects' buffers.
// BroadcasterConfig.StartRound/StartPos resume an interrupted carousel
// mid-round, reproducing the original datagram sequence exactly.
func NewBroadcaster(conn TransportConn, cfg BroadcasterConfig) *Broadcaster {
	return transport.NewSender(conn, cfg)
}

// NewReceiverDaemon returns a reassembly daemon reading from conn; drive
// it with Run and collect objects via WaitObject, Object or OnComplete.
func NewReceiverDaemon(conn TransportConn, cfg ReceiverDaemonConfig) *ReceiverDaemon {
	return transport.NewReceiverDaemon(conn, cfg)
}

// NewImpairment builds a live loss process for Loopback.Receiver from a
// channel spec and seed — the bridge from the paper's simulated loss to
// live transport impairment.
func NewImpairment(channelSpec string, seed int64) (Channel, error) {
	f, err := ChannelByName(channelSpec)
	if err != nil {
		return nil, err
	}
	return f.New(newRand(seed)), nil
}

// NewBatchImpairment builds the batched stepper form of a channel spec
// for Loopback.ReceiverStepper — the loss process that steps in 64-wide
// masks under one lock when senders write batches. ok is false when the
// channel kind cannot be batch-stepped (trace channels); the error is
// reserved for unparseable specs.
func NewBatchImpairment(channelSpec string) (st ChannelStepper, ok bool, err error) {
	f, err := ChannelByName(channelSpec)
	if err != nil {
		return ChannelStepper{}, false, err
	}
	bf, isBatch := f.(channel.BatchFactory)
	if !isBatch {
		return ChannelStepper{}, false, nil
	}
	st, ok = bf.Batch()
	return st, ok, nil
}
