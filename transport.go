package fecperf

// Facade over the broadcast transport (internal/transport): the layer
// that carries the delivery session's datagrams across a real network.
// Two backends share one Conn abstraction — UDP/UDP-multicast sockets
// for deployment, and an in-memory loopback whose deliveries pass
// through any Channel (Gilbert, Bernoulli, traces), so every scenario
// the simulator models runs live, in-process, deterministically.

import (
	"fecperf/internal/transport"
)

// Transport types, re-exported.
type (
	// TransportConn is a datagram endpoint (UDP or in-memory loopback).
	TransportConn = transport.Conn
	// Broadcaster streams encoded objects as a rate-limited carousel.
	Broadcaster = transport.Sender
	// BroadcasterConfig tunes the carousel (rate, rounds, scheduler).
	BroadcasterConfig = transport.SenderConfig
	// BroadcasterStats is a snapshot of sender counters.
	BroadcasterStats = transport.SenderStats
	// ReceiverDaemon demultiplexes datagrams into decoded objects with
	// bounded memory.
	ReceiverDaemon = transport.ReceiverDaemon
	// ReceiverDaemonConfig tunes the daemon's bounds and callbacks.
	ReceiverDaemonConfig = transport.ReceiverConfig
	// ReceiverStats is a snapshot of daemon counters.
	ReceiverStats = transport.Stats
	// Loopback is the in-memory broadcast medium for live-impairment
	// runs without sockets.
	Loopback = transport.Loopback
)

// ErrTransportClosed is returned by transport endpoints after Close.
var ErrTransportClosed = transport.ErrClosed

// DialBroadcast returns a sending UDP endpoint for addr ("host:port";
// multicast group addresses work without joining).
func DialBroadcast(addr string) (TransportConn, error) { return transport.DialUDP(addr) }

// ListenBroadcast returns a receiving UDP endpoint bound to addr,
// joining the group when addr is multicast.
func ListenBroadcast(addr string) (TransportConn, error) { return transport.ListenUDP(addr) }

// NewLoopback returns an empty in-memory broadcast medium. Attach
// receivers (each optionally behind a Channel impairment), then create
// sender endpoints with its Sender method.
func NewLoopback() *Loopback { return transport.NewLoopback() }

// NewBroadcaster returns a carousel sender writing to conn; Add encoded
// objects (EncodeForDelivery) before Run. The carousel encodes
// datagrams lazily from the objects' pooled symbol buffers — nothing
// is held pre-encoded — so added objects must stay open while the
// carousel runs. Call the sender's Close when done: it blocks until an
// in-flight Run returns (cancel its context first), then releases the
// objects' buffers.
// BroadcasterConfig.StartRound/StartPos resume an interrupted carousel
// mid-round, reproducing the original datagram sequence exactly.
func NewBroadcaster(conn TransportConn, cfg BroadcasterConfig) *Broadcaster {
	return transport.NewSender(conn, cfg)
}

// NewReceiverDaemon returns a reassembly daemon reading from conn; drive
// it with Run and collect objects via WaitObject, Object or OnComplete.
func NewReceiverDaemon(conn TransportConn, cfg ReceiverDaemonConfig) *ReceiverDaemon {
	return transport.NewReceiverDaemon(conn, cfg)
}

// NewGilbertImpairment returns a seeded Gilbert channel suitable for
// Loopback.Receiver — the bridge from the paper's simulated loss to live
// transport impairment. (Alias of NewGilbertChannel with a clearer name
// in transport contexts.)
func NewGilbertImpairment(p, q float64, seed int64) (Channel, error) {
	return NewGilbertChannel(p, q, seed)
}
