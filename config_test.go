package fecperf

import (
	"strings"
	"testing"
)

func TestParseSpecRoundTrip(t *testing.T) {
	lines := []string{
		"",
		"codec=rse(k=64,ratio=1.5)",
		"codec=rse(k=64,ratio=1.5,seed=7),sched=tx4,channel=gilbert(p=0.01,q=0.5),rate=5000",
		"codec=ldgm-staircase(k=20000,ratio=2.5,seed=1),sched=tx6(frac=0.3),trials=100,workers=8",
		"codec=no-fec(k=8),sched=repeat(x=3),channel=bernoulli(p=0.05)",
		"payload=1024,object=42,window=8,rounds=3,seed=-5,nsent=1200,pending=16,burst=64",
		"sched=carousel(inner=tx6(frac=0.5),rounds=3)",
	}
	for _, line := range lines {
		c, err := ParseSpec(line)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", line, err)
		}
		rendered := c.Spec()
		back, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("ParseSpec(%q).Spec() = %q does not re-parse: %v", line, rendered, err)
		}
		if back.Spec() != rendered {
			t.Errorf("spec drift: %q -> %q -> %q", line, rendered, back.Spec())
		}
	}
}

func TestParseSpecFields(t *testing.T) {
	c, err := ParseSpec("codec=rse(k=64,ratio=1.5),sched=tx2,channel=gilbert(p=0.01,q=0.79),rate=5000,trials=20,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if c.Codec.Family != "rse" || c.Codec.K != 64 || c.Codec.Ratio != 1.5 {
		t.Errorf("codec = %+v", c.Codec)
	}
	if c.Scheduler == nil || c.Scheduler.Name() != "tx2" {
		t.Errorf("scheduler = %v", c.Scheduler)
	}
	if c.Channel == nil || c.Channel.Name() != "gilbert(p=0.01,q=0.79)" {
		t.Errorf("channel = %v", c.Channel)
	}
	if c.Rate != 5000 || c.Trials != 20 || c.Seed != 9 {
		t.Errorf("scalars: %+v", c)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, line := range []string{
		"codec=bogus(k=3)",
		"codec=rse(k=64),shed=tx4", // typo key
		"rate=abc",
		"object=-1",
		"sched=tx9",
		"channel=gilbert(p=2,q=1)",
		"codec=rse(k=64,ratio=1.5", // unbalanced
	} {
		if _, err := ParseSpec(line); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", line)
		}
	}
}

func TestOptionsComposeWithSpec(t *testing.T) {
	c, err := NewConfig(
		WithSpec("codec=rse(k=64,ratio=1.5),rate=1000,seed=3"),
		WithRate(2000),       // later option wins
		WithScheduler("tx5"), // adds a field the spec left unset
		WithChannel("bernoulli(p=0.1)"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rate != 2000 {
		t.Errorf("Rate = %g, want the later option's 2000", c.Rate)
	}
	if c.Codec.K != 64 || c.Seed != 3 {
		t.Errorf("spec fields lost: %+v", c)
	}
	if c.Scheduler.Name() != "tx5" || c.Channel.Name() != "bernoulli(p=0.1)" {
		t.Errorf("added fields missing: %+v", c)
	}

	// The reverse order: the spec overlays only its own keys.
	c, err = NewConfig(WithRate(2000), WithSpec("rate=1000,seed=3"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Rate != 1000 || c.Seed != 3 {
		t.Errorf("WithSpec after WithRate: %+v", c)
	}
}

func TestSimulateMatchesDeprecatedMeasure(t *testing.T) {
	// The new spec-driven Simulate must reproduce the deprecated
	// Measure exactly: same code, scheduler, channel, trials, seed.
	code, err := NewCode("ldgm-staircase", 500, 2.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Measure(Measurement{
		Code: code, Scheduler: TxModel2(),
		P: 0.01, Q: 0.79, Trials: 10, Seed: 7, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Simulate(WithSpec(
		"codec=ldgm-staircase(k=500,ratio=2.5,seed=11),sched=tx2,channel=gilbert(p=0.01,q=0.79),trials=10,seed=7,workers=2"))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Simulate = %+v, Measure = %+v", got, want)
	}
}

func TestSimulateDefaults(t *testing.T) {
	// No scheduler, no channel: tx4 over the perfect channel. Every
	// trial then needs exactly the ideal packet count.
	agg, err := Simulate(WithCodec("rse(k=20,ratio=1.5)"), WithTrials(5), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Failures != 0 {
		t.Errorf("perfect channel produced %d failures", agg.Failures)
	}
	if _, err := Simulate(); err == nil || !strings.Contains(err.Error(), "codec") {
		t.Errorf("Simulate without codec: err = %v", err)
	}
	if _, err := Simulate(WithCodec("rse(ratio=1.5)")); err == nil {
		t.Error("Simulate without k succeeded")
	}
}

func TestSimulateRatioDefaultMatchesDelivery(t *testing.T) {
	// A spec that omits ratio must mean the same code in simulation as
	// on the delivery path: the shared 1.5 default, never a silent
	// zero-parity code.
	implicit, err := Simulate(WithCodec("rse(k=20)"), WithTrials(3), WithSeed(2),
		WithChannel("bernoulli(p=0.1)"))
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Simulate(WithCodec("rse(k=20,ratio=1.5)"), WithTrials(3), WithSeed(2),
		WithChannel("bernoulli(p=0.1)"))
	if err != nil {
		t.Fatal(err)
	}
	if implicit != explicit {
		t.Errorf("implicit ratio %+v != explicit 1.5 %+v", implicit, explicit)
	}
	obj, err := NewObject(make([]byte, 4096), WithCodec("rse(k=20)"), WithPayloadSize(256))
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	if want := int(float64(obj.K())*1.5 + 0.5); obj.N() != want {
		t.Errorf("NewObject implicit ratio: n = %d for k = %d, want %d (ratio 1.5)", obj.N(), obj.K(), want)
	}
}

func TestNewObjectSpec(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	obj, err := NewObject(data, WithSpec("codec=rse(ratio=1.5),object=9,payload=16"))
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	if obj.ObjectID() != 9 {
		t.Errorf("ObjectID = %d, want 9", obj.ObjectID())
	}
	rx := NewDeliveryReceiver()
	var got []byte
	for id := 0; id < obj.N(); id++ {
		d, err := obj.Datagram(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, done, data, err := rx.Ingest(d); err != nil {
			t.Fatal(err)
		} else if done {
			got = data
			break
		}
	}
	if string(got) != string(data) {
		t.Errorf("round trip = %q", got)
	}
}

func TestExperimentIDsSorted(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) == 0 {
		t.Fatal("no experiments registered")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("ExperimentIDs not strictly sorted: %q before %q", ids[i-1], ids[i])
		}
	}
}

func FuzzConfigSpec(f *testing.F) {
	f.Add("codec=rse(k=64,ratio=1.5),sched=tx4,channel=gilbert(p=0.01,q=0.5),rate=5000")
	f.Add("payload=1024,object=42,window=8")
	f.Add("sched=carousel(inner=tx6(frac=0.5),rounds=3)")
	f.Add("codec=,sched=,channel=")
	f.Fuzz(func(t *testing.T, line string) {
		c, err := ParseSpec(line)
		if err != nil {
			return
		}
		rendered := c.Spec()
		back, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("ParseSpec(%q).Spec() = %q does not re-parse: %v", line, rendered, err)
		}
		if back.Spec() != rendered {
			t.Fatalf("spec drift: %q -> %q -> %q", line, rendered, back.Spec())
		}
	})
}
