module fecperf

go 1.24
